// On-disk format stability for the persistence layer, mirroring what
// golden_format_test.cc does for the wire format: byte-exact fixture
// files for the WAL and snapshot formats are checked in under
// tests/golden/, and this test both decodes them and re-encodes to
// identical bytes. If an intentional format change breaks these, bump
// the version byte instead of silently altering v1.
//
// Regenerating fixtures after an *intentional* format bump:
//   DD_REGEN_GOLDEN=1 ./golden_persistence_test

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/ddsketch.h"
#include "server/protocol.h"
#include "timeseries/snapshot.h"
#include "timeseries/wal.h"
#include "util/crc32.h"

#ifndef DD_GOLDEN_DIR
#error "DD_GOLDEN_DIR must point at tests/golden"
#endif

namespace dd {
namespace {

std::string Hex(const std::string& bytes) {
  std::string out;
  char buf[3];
  for (unsigned char c : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", c);
    out += buf;
  }
  return out;
}

std::string FixturePath(const std::string& name) {
  return std::string(DD_GOLDEN_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void MaybeRegenerate(const std::string& name, const std::string& bytes) {
  if (std::getenv("DD_REGEN_GOLDEN") == nullptr) return;
  std::ofstream out(FixturePath(name), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write fixture " << name;
}

/// The scripted WAL content: a mix of sketch-payload and raw-value
/// records across two series, with a negative timestamp in the mix.
std::string GoldenWalBytes() {
  std::string bytes = EncodeWalHeader(/*epoch=*/1);
  auto worker = std::move(DDSketch::Create(0.01, 2048)).value();
  worker.Add(1.0);
  worker.Add(2.5);
  worker.Add(100.0);
  WalRecord sketch_record;
  sketch_record.type = WalRecord::Type::kIngestSketch;
  sketch_record.series = "api.latency";
  sketch_record.timestamp = 1000;
  sketch_record.payload = worker.Serialize();
  bytes += EncodeWalRecord(sketch_record);
  WalRecord value_record;
  value_record.type = WalRecord::Type::kIngestValue;
  value_record.series = "db.errors";
  value_record.timestamp = -30;
  value_record.value = 3.25;
  bytes += EncodeWalRecord(value_record);
  return bytes;
}

/// The scripted snapshot content: two series over a three-level ladder,
/// compacted so every tier holds intervals.
std::string GoldenSnapshotBytes() {
  SketchStoreOptions options;
  options.levels = {{10, 60}, {60, 240}, {240, 0}};
  auto store = std::move(SketchStore::Create(options)).value();
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(
        store.IngestValue("api.latency", i * 20, 1.0 + (i % 7)).ok());
    EXPECT_TRUE(store.IngestValue("db.errors", i * 13 - 20, 0.5 * i).ok());
  }
  store.Compact(/*now=*/800);  // populate the coarse tiers too
  return EncodeSnapshot(store, /*epoch=*/3);
}

TEST(GoldenPersistenceTest, Crc32cKnownAnswerVectors) {
  // The standard CRC-32C check value; pins polynomial and reflection.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8a9136aau);
  // Slice-and-continue composition.
  EXPECT_EQ(Crc32c(Crc32c("1234"), "56789"), Crc32c("123456789"));
}

TEST(GoldenPersistenceTest, WalHeaderPinned) {
  // magic "DDWL", version 1, epoch 1 (fixed32), CRC-32C of the preceding
  // 9 bytes.
  EXPECT_EQ(Hex(EncodeWalHeader(1)),
            "4444574c" "01" "01000000" "80265f4d");
}

TEST(GoldenPersistenceTest, WalFixtureRoundTripsByteExactly) {
  const std::string encoded = GoldenWalBytes();
  MaybeRegenerate("wal_v1.bin", encoded);
  const std::string fixture = ReadFixture("wal_v1.bin");
  ASSERT_EQ(Hex(encoded), Hex(fixture));

  auto scanned = ReadWal(fixture, WalRead::kStrict);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(scanned.value().epoch, 1u);
  ASSERT_EQ(scanned.value().records.size(), 2u);
  EXPECT_EQ(scanned.value().records[0].series, "api.latency");
  EXPECT_EQ(scanned.value().records[0].timestamp, 1000);
  EXPECT_EQ(scanned.value().records[1].series, "db.errors");
  EXPECT_EQ(scanned.value().records[1].timestamp, -30);
  EXPECT_EQ(scanned.value().records[1].value, 3.25);

  // Re-encode: header + records must reproduce the fixture bytes.
  std::string reencoded = EncodeWalHeader(scanned.value().epoch);
  for (const WalRecord& record : scanned.value().records) {
    reencoded += EncodeWalRecord(record);
  }
  EXPECT_EQ(Hex(reencoded), Hex(fixture));
}

TEST(GoldenPersistenceTest, SnapshotFixtureRoundTripsByteExactly) {
  const std::string encoded = GoldenSnapshotBytes();
  MaybeRegenerate("snapshot_v2.bin", encoded);
  const std::string fixture = ReadFixture("snapshot_v2.bin");
  // magic "DDSS", version 2.
  EXPECT_EQ(Hex(fixture.substr(0, 5)), "4444535302");
  ASSERT_EQ(Hex(encoded.substr(0, 64)), Hex(fixture.substr(0, 64)));
  ASSERT_EQ(encoded, fixture);

  auto decoded = DecodeSnapshot(fixture);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().epoch, 3u);
  EXPECT_EQ(decoded.value().store.num_series(), 2u);
  ASSERT_EQ(decoded.value().store.num_levels(), 3u);

  // Decode -> re-encode is the identity on the fixture.
  EXPECT_EQ(EncodeSnapshot(decoded.value().store, decoded.value().epoch),
            fixture);

  // And the decoded store answers queries (sanity that the fixture holds
  // real data, not just parseable bytes).
  auto q = decoded.value().store.QueryQuantile("api.latency", 0, 800, 0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q.value(), 0.0);
}

TEST(GoldenPersistenceTest, SnapshotV1FixtureStillDecodes) {
  // Upgrade path: a v1 snapshot (fixed base/retention/factor geometry,
  // written by protocol-v5 builds) must keep decoding in place. The v1
  // fields map onto a two-level ladder; retention is raised to the
  // coarse interval where v1 allowed shorter (keeping data longer is
  // always safe).
  const std::string fixture = ReadFixture("snapshot_v1.bin");
  EXPECT_EQ(Hex(fixture.substr(0, 5)), "4444535301");
  auto decoded = DecodeSnapshot(fixture);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().epoch, 3u);
  EXPECT_EQ(decoded.value().store.num_series(), 2u);
  // v1 fixture geometry: base=10s, retention=60s, factor=6.
  const std::vector<RollupLevel> expected = {{10, 60}, {60, 0}};
  EXPECT_EQ(decoded.value().store.options().levels, expected);
  auto q = decoded.value().store.QueryQuantile("api.latency", 0, 200, 0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q.value(), 0.0);
  // Re-encoding writes v2: the old geometry round-trips through the
  // ladder encoding with identical data.
  const std::string upgraded =
      EncodeSnapshot(decoded.value().store, decoded.value().epoch);
  EXPECT_EQ(Hex(upgraded.substr(0, 5)), "4444535302");
  auto redecoded = DecodeSnapshot(upgraded);
  ASSERT_TRUE(redecoded.ok());
  EXPECT_EQ(redecoded.value().store.options().levels, expected);
  EXPECT_EQ(
      std::move(redecoded.value().store.QueryQuantile("api.latency", 0, 200,
                                                      0.5))
          .value(),
      q.value());
}

/// The scripted protocol traffic: the hello, one request per op, one
/// response per op (including an error response, a v3 BUSY admission
/// rejection, and a v5 FENCED refusal), and one v5 replication frame
/// per tag — every frame type sketchd ships, concatenated in a fixed
/// order.
std::string GoldenProtocolBytes() {
  std::string bytes = EncodeHello();

  Request ingest;
  ingest.op = Request::Op::kIngest;
  ingest.series = "api.latency";
  ingest.timestamp = 1000;
  ingest.value = 3.25;
  bytes += EncodeRequest(ingest);

  auto worker = std::move(DDSketch::Create(0.01, 2048)).value();
  worker.Add(1.0);
  worker.Add(2.5);
  worker.Add(100.0);
  Request merge;
  merge.op = Request::Op::kMerge;
  merge.series = "db.errors";
  merge.timestamp = -30;
  merge.payload = worker.Serialize();
  bytes += EncodeRequest(merge);

  Request query;
  query.op = Request::Op::kQuery;
  query.series = "api.latency";
  query.start = -100;
  query.end = 2000;
  query.quantiles = {0.5, 0.95, 0.99};
  bytes += EncodeRequest(query);

  Request checkpoint;
  checkpoint.op = Request::Op::kCheckpoint;
  bytes += EncodeRequest(checkpoint);

  Request stats;
  stats.op = Request::Op::kStats;
  bytes += EncodeRequest(stats);

  // v5: a follower's SUBSCRIBE handshake (token + resume positions) and
  // a failover PROMOTE.
  Request subscribe;
  subscribe.op = Request::Op::kSubscribe;
  subscribe.repl_token = 1;
  subscribe.positions = {{2, 13}, {2, 4096}};
  bytes += EncodeRequest(subscribe);

  Request promote;
  promote.op = Request::Op::kPromote;
  bytes += EncodeRequest(promote);

  // v6: an operator-driven COMPACT (rollup + retention at a checkpoint
  // boundary), clamped server-side to the data horizon.
  Request compact;
  compact.op = Request::Op::kCompact;
  compact.compact_now = 1700000000;
  bytes += EncodeRequest(compact);

  // v7: a connection declaring its admission tag.
  Request set_tag;
  set_tag.op = Request::Op::kSetTag;
  set_tag.tag = "team-a.prod";
  bytes += EncodeRequest(set_tag);

  Response ingest_ok;
  ingest_ok.op = Request::Op::kIngest;
  ingest_ok.wal_offset = 13 + 27;
  bytes += EncodeResponse(ingest_ok);

  Response merge_err;
  merge_err.op = Request::Op::kMerge;
  merge_err.code = StatusCode::kIncompatible;
  merge_err.message = "sketches are not mergeable";
  bytes += EncodeResponse(merge_err);

  Response query_ok;
  query_ok.op = Request::Op::kQuery;
  query_ok.values = {3.25, 3.25, 3.25};
  bytes += EncodeResponse(query_ok);

  Response checkpoint_ok;
  checkpoint_ok.op = Request::Op::kCheckpoint;
  checkpoint_ok.epoch = 2;
  bytes += EncodeResponse(checkpoint_ok);

  Response stats_ok;
  stats_ok.op = Request::Op::kStats;
  stats_ok.stats.num_series = 2;
  stats_ok.stats.num_intervals = 5;
  stats_ok.stats.size_in_bytes = 4096;
  stats_ok.stats.wal_offset = 40;
  stats_ok.stats.epoch = 2;
  stats_ok.stats.batch_commits = 17;
  stats_ok.stats.background_checkpoints = 3;
  // v3 serving counters.
  stats_ok.stats.connections_open = 1024;
  stats_ok.stats.connections_accepted = 4096;
  stats_ok.stats.connections_shed = 7;
  stats_ok.stats.busy_rejections = 21;
  stats_ok.stats.staged_bytes = 65536;
  // v4 self-instrumentation rows: a loaded INGEST row, a lightly used
  // QUERY row, a BUSY row, and empty rows (count 0, percentiles 0) for
  // the rest — all six always on the wire, in LatencyOp order.
  OpLatencyStats ingest_lat;
  ingest_lat.count = 4096;
  ingest_lat.p50_us = 812.5;
  ingest_lat.p90_us = 1900.25;
  ingest_lat.p99_us = 4225.0;
  ingest_lat.p999_us = 9800.125;
  ingest_lat.max_us = 12000.5;
  stats_ok.stats.op_latencies[static_cast<size_t>(LatencyOp::kIngest)] =
      ingest_lat;
  OpLatencyStats query_lat;
  query_lat.count = 32;
  query_lat.p50_us = 95.0;
  query_lat.p90_us = 140.75;
  query_lat.p99_us = 310.0;
  query_lat.p999_us = 310.0;
  query_lat.max_us = 310.0;
  stats_ok.stats.op_latencies[static_cast<size_t>(LatencyOp::kQuery)] =
      query_lat;
  OpLatencyStats busy_lat;
  busy_lat.count = 21;
  busy_lat.p50_us = 2.5;
  busy_lat.p90_us = 4.0;
  busy_lat.p99_us = 6.25;
  busy_lat.p999_us = 6.25;
  busy_lat.max_us = 6.25;
  stats_ok.stats.op_latencies[static_cast<size_t>(LatencyOp::kBusy)] =
      busy_lat;
  ShardStats shard0;
  shard0.shard = 0;
  shard0.num_series = 1;
  shard0.wal_bytes = 27;
  shard0.epoch = 2;
  shard0.batch_commits = 9;
  shard0.background_checkpoints = 2;
  stats_ok.stats.shards.push_back(shard0);
  ShardStats shard1;
  shard1.shard = 1;
  shard1.num_series = 1;
  shard1.wal_bytes = 13;
  shard1.epoch = 3;
  shard1.batch_commits = 8;
  shard1.background_checkpoints = 1;
  stats_ok.stats.shards.push_back(shard1);
  // v5 replication fields (encoded after the shard rows).
  stats_ok.stats.role = 0;
  stats_ok.stats.fence_token = 3;
  stats_ok.stats.fenced = 0;
  stats_ok.stats.repl_subscribers = 1;
  stats_ok.stats.repl_shipped_bytes = 8192;
  stats_ok.stats.repl_applied_bytes = 0;
  stats_ok.stats.repl_connected = 0;
  stats_ok.stats.repl_heartbeat_age_ms = 0;
  // v6 per-level rollup rows (encoded after the replication fields).
  stats_ok.stats.levels.push_back({10, 3600, 360, 0, 40960});
  stats_ok.stats.levels.push_back({60, 86400, 1440, 2100, 131072});
  stats_ok.stats.levels.push_back({3600, 0, 24, 35, 16384});
  // v7 per-tag admission rows (encoded after the level rows).
  {
    TagStatsRow default_row;
    default_row.tag = "default";
    default_row.floor_bytes = 1 << 20;
    default_row.budget_bytes = (1 << 20) + (1 << 21);
    default_row.count = 96;
    default_row.p50_us = 120.5;
    default_row.p99_us = 800.25;
    default_row.p999_us = 1500.0;
    stats_ok.stats.tags.push_back(default_row);
    TagStatsRow tagged_row;
    tagged_row.tag = "team-a.prod";
    tagged_row.floor_bytes = 1 << 20;
    tagged_row.budget_bytes = (1 << 20) + (1 << 19);
    tagged_row.staged_bytes = 4096;
    tagged_row.busy_rejections = 21;
    tagged_row.throttle_permille = 250;  // mid-throttle
    tagged_row.count = 2048;
    tagged_row.p50_us = 95.0;
    tagged_row.p99_us = 5000.5;
    tagged_row.p999_us = 12000.0;
    stats_ok.stats.tags.push_back(tagged_row);
  }
  bytes += EncodeResponse(stats_ok);

  // v3: an admission-control rejection. The record was never staged —
  // no wal_offset — and the client is expected to retry after backoff.
  // v7: the refusal carries the refusing tag's retry hint.
  Response ingest_busy;
  ingest_busy.op = Request::Op::kIngest;
  ingest_busy.code = StatusCode::kBusy;
  ingest_busy.message = "staged-bytes budget exceeded; retry with backoff";
  ingest_busy.retry_after_ms = 10;
  bytes += EncodeResponse(ingest_busy);

  // v5: the SUBSCRIBE/PROMOTE acks and a FENCED write refusal from a
  // deposed primary (like BUSY: no payload, the record never landed).
  Response subscribe_ok;
  subscribe_ok.op = Request::Op::kSubscribe;
  subscribe_ok.repl_token = 3;
  subscribe_ok.repl_shards = 2;
  bytes += EncodeResponse(subscribe_ok);

  Response promote_ok;
  promote_ok.op = Request::Op::kPromote;
  promote_ok.repl_token = 4;
  bytes += EncodeResponse(promote_ok);

  // v6: the COMPACT ack — folded interval count plus the epoch of the
  // checkpoint that persisted the fold.
  Response compact_ok;
  compact_ok.op = Request::Op::kCompact;
  compact_ok.compacted = 354;
  compact_ok.epoch = 3;
  bytes += EncodeResponse(compact_ok);

  // v7: the SET_TAG ack — acknowledgement only, no payload.
  Response set_tag_ok;
  set_tag_ok.op = Request::Op::kSetTag;
  bytes += EncodeResponse(set_tag_ok);

  Response ingest_fenced;
  ingest_fenced.op = Request::Op::kIngest;
  ingest_fenced.code = StatusCode::kFenced;
  ingest_fenced.message =
      "writer fenced: a newer primary holds the fencing token";
  bytes += EncodeResponse(ingest_fenced);

  // v5 replication channel: one frame per tag, as shipped after an OK
  // SUBSCRIBE (primary -> follower: snapshot, segment, heartbeat;
  // follower -> primary: ack, fence).
  ReplFrame snapshot_frame;
  snapshot_frame.tag = ReplFrame::Tag::kSnapshot;
  snapshot_frame.shard = 0;
  snapshot_frame.epoch = 2;
  snapshot_frame.payload = GoldenSnapshotBytes();
  bytes += EncodeReplFrame(snapshot_frame);

  ReplFrame segment_frame;
  segment_frame.tag = ReplFrame::Tag::kSegment;
  segment_frame.shard = 1;
  segment_frame.epoch = 2;
  segment_frame.start_offset = 13;
  segment_frame.payload = GoldenWalBytes().substr(13);  // records, no header
  bytes += EncodeReplFrame(segment_frame);

  ReplFrame heartbeat_frame;
  heartbeat_frame.tag = ReplFrame::Tag::kHeartbeat;
  heartbeat_frame.token = 3;
  heartbeat_frame.positions = {{2, 4123}, {2, 13}};
  bytes += EncodeReplFrame(heartbeat_frame);

  ReplFrame ack_frame;
  ack_frame.tag = ReplFrame::Tag::kAck;
  ack_frame.shard = 0;
  ack_frame.epoch = 2;
  ack_frame.offset = 4123;
  bytes += EncodeReplFrame(ack_frame);

  ReplFrame fence_frame;
  fence_frame.tag = ReplFrame::Tag::kFence;
  fence_frame.token = 4;
  bytes += EncodeReplFrame(fence_frame);

  // v6 chunked snapshot bootstrap: a chunk train closed by a terminator
  // (a real train slices one image; the fixture pins the frame layout).
  ReplFrame chunk_frame;
  chunk_frame.tag = ReplFrame::Tag::kSnapshotChunk;
  chunk_frame.shard = 0;
  chunk_frame.payload = GoldenSnapshotBytes().substr(0, 48);
  bytes += EncodeReplFrame(chunk_frame);

  ReplFrame end_frame;
  end_frame.tag = ReplFrame::Tag::kSnapshotEnd;
  end_frame.shard = 0;
  end_frame.epoch = 2;
  bytes += EncodeReplFrame(end_frame);

  return bytes;
}

TEST(GoldenPersistenceTest, ProtocolHelloPinned) {
  // magic "DDSP", version 7 (v7 = per-tag admission: SET_TAG, per-tag
  // STATS rows, retry_after_ms on BUSY refusals).
  EXPECT_EQ(Hex(EncodeHello()), "44445350" "07");
}

TEST(GoldenPersistenceTest, ProtocolIngestFramePinned) {
  // len=13 varint | crc fixed32 | body: op=1, series len+bytes "s",
  // ts zigzag(1000), value fixed64 1.5.
  Request request;
  request.op = Request::Op::kIngest;
  request.series = "s";
  request.timestamp = 1000;
  request.value = 1.5;
  EXPECT_EQ(Hex(EncodeRequest(request)),
            "0d" "99cf5196" "01" "0173" "d00f" "000000000000f83f");
}

TEST(GoldenPersistenceTest, ProtocolFixtureRoundTripsByteExactly) {
  const std::string encoded = GoldenProtocolBytes();
  MaybeRegenerate("protocol_v7.bin", encoded);
  const std::string fixture = ReadFixture("protocol_v7.bin");
  ASSERT_EQ(Hex(encoded), Hex(fixture));

  // Walk the fixture: hello, then 9 requests, then 11 responses, then 7
  // replication frames — every frame must decode, and re-encoding must
  // reproduce the exact bytes.
  std::string_view rest(fixture);
  ASSERT_TRUE(CheckHello(rest.substr(0, kHelloBytes)).ok());
  std::string reencoded(EncodeHello());
  rest.remove_prefix(kHelloBytes);
  for (int i = 0; i < 9; ++i) {
    size_t frame_size = 0;
    auto body = DecodeFrame(rest, &frame_size);
    ASSERT_TRUE(body.ok()) << "request " << i << ": "
                           << body.status().ToString();
    auto request = DecodeRequest(body.value());
    ASSERT_TRUE(request.ok()) << "request " << i << ": "
                              << request.status().ToString();
    EXPECT_EQ(static_cast<uint8_t>(request.value().op), i + 1);
    reencoded += EncodeRequest(request.value());
    rest.remove_prefix(frame_size);
  }
  // Trailing ops: BUSY ingest, SUBSCRIBE ack, PROMOTE ack, COMPACT ack,
  // SET_TAG ack, FENCED ingest.
  constexpr uint8_t kResponseOps[] = {1, 2, 3, 4, 5, 1, 6, 7, 8, 9, 1};
  for (int i = 0; i < 11; ++i) {
    size_t frame_size = 0;
    auto body = DecodeFrame(rest, &frame_size);
    ASSERT_TRUE(body.ok()) << "response " << i << ": "
                           << body.status().ToString();
    auto response = DecodeResponse(body.value());
    ASSERT_TRUE(response.ok()) << "response " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(static_cast<uint8_t>(response.value().op), kResponseOps[i]);
    reencoded += EncodeResponse(response.value());
    rest.remove_prefix(frame_size);
  }
  for (int i = 0; i < 7; ++i) {
    size_t frame_size = 0;
    auto body = DecodeFrame(rest, &frame_size);
    ASSERT_TRUE(body.ok()) << "repl frame " << i << ": "
                           << body.status().ToString();
    auto frame = DecodeReplFrame(body.value());
    ASSERT_TRUE(frame.ok()) << "repl frame " << i << ": "
                            << frame.status().ToString();
    EXPECT_EQ(static_cast<uint8_t>(frame.value().tag), i + 1);
    reencoded += EncodeReplFrame(frame.value());
    rest.remove_prefix(frame_size);
  }
  EXPECT_TRUE(rest.empty());
  EXPECT_EQ(Hex(reencoded), Hex(fixture));

  // Spot checks that the fixture carries real content.
  const auto kNthFrameBody = [&](int skip) {
    std::string_view walk(fixture);
    walk.remove_prefix(kHelloBytes);
    size_t frame_size = 0;
    for (int i = 0; i < skip; ++i) {
      auto body = DecodeFrame(walk, &frame_size);
      EXPECT_TRUE(body.ok());
      walk.remove_prefix(frame_size);
    }
    auto body = DecodeFrame(walk, &frame_size);
    EXPECT_TRUE(body.ok());
    return std::string(body.value());
  };

  // Request 8 (frame 8 after the hello): the v7 SET_TAG declaration.
  const Request set_tag = std::move(DecodeRequest(kNthFrameBody(8))).value();
  EXPECT_EQ(set_tag.op, Request::Op::kSetTag);
  EXPECT_EQ(set_tag.tag, "team-a.prod");

  // Response 1 (frame 10 after the hello): the MERGE error.
  const Response merge_err =
      std::move(DecodeResponse(kNthFrameBody(10))).value();
  EXPECT_EQ(merge_err.code, StatusCode::kIncompatible);
  EXPECT_EQ(merge_err.message, "sketches are not mergeable");

  // Response 4: the STATS payload carries the v7 per-tag rows after the
  // v6 level rows.
  const Response stats_ok =
      std::move(DecodeResponse(kNthFrameBody(13))).value();
  ASSERT_EQ(stats_ok.stats.tags.size(), 2u);
  EXPECT_EQ(stats_ok.stats.tags[0].tag, "default");
  EXPECT_EQ(stats_ok.stats.tags[1].tag, "team-a.prod");
  EXPECT_EQ(stats_ok.stats.tags[1].busy_rejections, 21u);
  EXPECT_EQ(stats_ok.stats.tags[1].throttle_permille, 250u);
  EXPECT_EQ(stats_ok.stats.tags[1].p999_us, 12000.0);

  // Response 5: the v3 BUSY rejection — a refused record has no
  // wal_offset, but v7 adds the refusing tag's retry hint.
  const Response busy = std::move(DecodeResponse(kNthFrameBody(14))).value();
  EXPECT_EQ(busy.code, StatusCode::kBusy);
  EXPECT_EQ(busy.wal_offset, 0u);
  EXPECT_EQ(busy.retry_after_ms, 10u);

  // Response 8: the v6 COMPACT ack carrying the fold count + epoch.
  const Response compact_ok =
      std::move(DecodeResponse(kNthFrameBody(17))).value();
  EXPECT_EQ(compact_ok.compacted, 354u);
  EXPECT_EQ(compact_ok.epoch, 3u);

  // Response 9: the v7 SET_TAG ack is a bare acknowledgement.
  const Response set_tag_ok =
      std::move(DecodeResponse(kNthFrameBody(18))).value();
  EXPECT_EQ(set_tag_ok.op, Request::Op::kSetTag);
  EXPECT_EQ(set_tag_ok.code, StatusCode::kOk);

  // Response 10: the v5 FENCED refusal from a deposed primary.
  const Response fenced =
      std::move(DecodeResponse(kNthFrameBody(19))).value();
  EXPECT_EQ(fenced.code, StatusCode::kFenced);
  EXPECT_EQ(fenced.wal_offset, 0u);

  // Repl frame 1 (frame 21): a WAL segment carrying real record bytes.
  const ReplFrame segment =
      std::move(DecodeReplFrame(kNthFrameBody(21))).value();
  EXPECT_EQ(segment.tag, ReplFrame::Tag::kSegment);
  EXPECT_EQ(segment.start_offset, 13u);
  EXPECT_EQ(segment.payload, GoldenWalBytes().substr(13));

  // Repl frame 6 (frame 26): the chunk-train terminator names its epoch.
  const ReplFrame end =
      std::move(DecodeReplFrame(kNthFrameBody(26))).value();
  EXPECT_EQ(end.tag, ReplFrame::Tag::kSnapshotEnd);
  EXPECT_EQ(end.epoch, 2u);
}

TEST(GoldenPersistenceTest, VersionByteGuardsDecoding) {
  std::string wal = GoldenWalBytes();
  wal[4] = 2;  // future version
  auto wal_result = ReadWal(wal, WalRead::kStrict);
  ASSERT_FALSE(wal_result.ok());
  EXPECT_EQ(wal_result.status().code(), StatusCode::kCorruption);

  std::string snapshot = GoldenSnapshotBytes();
  snapshot[4] = 3;  // future version (1 and 2 both decode)
  auto snapshot_result = DecodeSnapshot(snapshot);
  ASSERT_FALSE(snapshot_result.ok());
  EXPECT_EQ(snapshot_result.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dd
