#include "data/ground_truth.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dd {
namespace {

TEST(ExactQuantilesTest, PaperRankConvention) {
  // Lower quantile: rank floor(1 + q(n-1)), 1-based.
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  ExactQuantiles t(xs);
  EXPECT_EQ(t.Quantile(0.0), 10);
  EXPECT_EQ(t.Quantile(0.24), 10);  // 1 + .24*4 = 1.96 -> rank 1
  EXPECT_EQ(t.Quantile(0.25), 20);  // 1 + 1 = 2
  EXPECT_EQ(t.Quantile(0.5), 30);
  EXPECT_EQ(t.Quantile(0.74), 30);  // 1 + 2.96 -> 3.96 -> rank 3
  EXPECT_EQ(t.Quantile(0.75), 40);
  EXPECT_EQ(t.Quantile(0.99), 40);  // 1 + 3.96 = 4.96 -> rank 4
  EXPECT_EQ(t.Quantile(1.0), 50);
}

TEST(ExactQuantilesTest, UnsortedInputSorted) {
  ExactQuantiles t(std::vector<double>{5, 1, 4, 2, 3});
  EXPECT_EQ(t.min(), 1);
  EXPECT_EQ(t.max(), 5);
  EXPECT_EQ(t.Quantile(0.5), 3);
}

TEST(ExactQuantilesTest, DuplicatesHandled) {
  ExactQuantiles t(std::vector<double>{1, 1, 1, 1, 100});
  EXPECT_EQ(t.Quantile(0.5), 1);
  EXPECT_EQ(t.Quantile(0.74), 1);
  EXPECT_EQ(t.Quantile(1.0), 100);
}

TEST(ExactQuantilesTest, AddAllExtends) {
  ExactQuantiles t(std::vector<double>{1, 2, 3});
  t.AddAll(std::vector<double>{0, 4});
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.min(), 0);
  EXPECT_EQ(t.Quantile(0.5), 2);
}

TEST(ExactQuantilesTest, Ranks) {
  ExactQuantiles t(std::vector<double>{10, 20, 20, 30});
  EXPECT_EQ(t.RankLowerOf(5), 0u);
  EXPECT_EQ(t.RankUpperOf(5), 0u);
  EXPECT_EQ(t.RankLowerOf(20), 1u);
  EXPECT_EQ(t.RankUpperOf(20), 3u);
  EXPECT_EQ(t.RankUpperOf(30), 4u);
  EXPECT_EQ(t.RankUpperOf(99), 4u);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(RelativeError(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(101, 100), 0.01);
  EXPECT_DOUBLE_EQ(RelativeError(99, 100), 0.01);
  EXPECT_DOUBLE_EQ(RelativeError(-99, -100), 0.01);
  EXPECT_DOUBLE_EQ(RelativeError(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(RelativeError(1, 0)));
}

TEST(RankErrorTest, ZeroWhenEstimateSharesRankBand) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ExactQuantiles t(xs);
  // Exact answer.
  EXPECT_DOUBLE_EQ(RankError(t, 0.5, t.Quantile(0.5)), 0.0);
  // Any value between the true quantile and the next sample has the same
  // rank band.
  EXPECT_DOUBLE_EQ(RankError(t, 0.5, 5.5), 0.0);
}

TEST(RankErrorTest, CountsDisplacedRanks) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ExactQuantiles t(xs);
  // q=0.5 -> target rank 5 (value 5). Estimate 8 has rank band [7,8]:
  // distance 2 ranks -> 0.2.
  EXPECT_DOUBLE_EQ(RankError(t, 0.5, 8.0), 0.2);
  // Estimate 0.5 (below everything): band [0,0], distance 5 -> 0.5.
  EXPECT_DOUBLE_EQ(RankError(t, 0.5, 0.5), 0.5);
}

TEST(RankErrorTest, DuplicateHeavyData) {
  // With many duplicates a single value spans a wide rank band.
  std::vector<double> xs(100, 7.0);
  xs.push_back(8.0);
  ExactQuantiles t(xs);
  EXPECT_DOUBLE_EQ(RankError(t, 0.5, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(RankError(t, 0.0, 7.0), 0.0);
  // Estimating the max value 8 for the median: band [100, 101],
  // target rank 51 -> 49 ranks off.
  EXPECT_NEAR(RankError(t, 0.5, 8.0), 49.0 / 101.0, 1e-12);
}

TEST(RankErrorTest, RandomizedConsistency) {
  Rng rng(61);
  std::vector<double> xs(1001);
  for (double& x : xs) x = rng.NextDouble() * 1000;
  ExactQuantiles t(xs);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    // The exact quantile always has zero rank error; a value epsilon above
    // the p(q+0.1) quantile has rank error ~0.1.
    EXPECT_DOUBLE_EQ(RankError(t, q, t.Quantile(q)), 0.0) << q;
    if (q + 0.1 <= 1.0) {
      const double displaced = t.Quantile(q + 0.1) + 1e-9;
      EXPECT_NEAR(RankError(t, q, displaced), 0.1, 0.01) << q;
    }
  }
}

}  // namespace
}  // namespace dd
