#include "hdr/hdr_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

HdrHistogram Make(int digits = 2, uint64_t highest = uint64_t{1} << 40) {
  auto r = HdrHistogram::Create(digits, highest);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(HdrHistogramTest, CreateValidation) {
  EXPECT_FALSE(HdrHistogram::Create(0, 1000).ok());
  EXPECT_FALSE(HdrHistogram::Create(6, 1000).ok());
  EXPECT_FALSE(HdrHistogram::Create(2, 1).ok());
  EXPECT_FALSE(HdrHistogram::Create(2, uint64_t{1} << 63).ok());
  EXPECT_TRUE(HdrHistogram::Create(2, 1000000).ok());
}

TEST(HdrHistogramTest, IndexingRoundTrip) {
  HdrHistogram h = Make();
  Rng rng(81);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t v = rng.NextBounded(uint64_t{1} << 40);
    const size_t index = h.CountsIndexFor(v);
    const uint64_t lo = h.LowestValueAt(index);
    const uint64_t width = h.BinWidthAt(index);
    EXPECT_GE(v, lo) << v;
    EXPECT_LT(v, lo + width) << v;
  }
}

TEST(HdrHistogramTest, IndexingIsMonotone) {
  HdrHistogram h = Make();
  size_t prev = 0;
  for (uint64_t v = 0; v < 100000; v += 7) {
    const size_t index = h.CountsIndexFor(v);
    EXPECT_GE(index, prev);
    prev = index;
  }
}

TEST(HdrHistogramTest, BinWidthRespectsSignificantDigits) {
  // d=2: bin width / value <= 1/100 for values past the first bucket.
  HdrHistogram h = Make(2);
  for (uint64_t v = 1000; v < (uint64_t{1} << 39); v = v * 3 + 1) {
    const size_t index = h.CountsIndexFor(v);
    const double width = static_cast<double>(h.BinWidthAt(index));
    EXPECT_LE(width / static_cast<double>(v), 0.01 * (1 + 1e-9)) << v;
  }
}

TEST(HdrHistogramTest, RelativeErrorGuarantee) {
  HdrHistogram h = Make(2);
  Rng rng(82);
  std::vector<double> data;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = 1 + rng.NextBounded(uint64_t{1} << 39);
    data.push_back(static_cast<double>(v));
    h.Record(v);
  }
  ExactQuantiles truth(data);
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    const double est = h.QuantileOrNaN(q);
    EXPECT_LE(RelativeError(est, truth.Quantile(q)), 0.01) << q;
  }
}

TEST(HdrHistogramTest, EmptyAndValidation) {
  HdrHistogram h = Make();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Quantile(0.5).ok());
  h.Record(10);
  EXPECT_FALSE(h.Quantile(-1).ok());
  EXPECT_FALSE(h.Quantile(2).ok());
  EXPECT_DOUBLE_EQ(h.QuantileOrNaN(0.5), 10.0);
}

TEST(HdrHistogramTest, ClampsAboveRange) {
  HdrHistogram h = Make(2, 1 << 20);
  h.Record(1 << 25);
  EXPECT_EQ(h.clamped_count(), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.max(), uint64_t{1} << 20);
}

TEST(HdrHistogramTest, MergeMatchesCombinedStream) {
  HdrHistogram a = Make(), b = Make(), whole = Make();
  Rng rng(83);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = 1 + rng.NextBounded(1 << 30);
    (i % 2 ? a : b).Record(v);
    whole.Record(v);
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.count(), whole.count());
  for (double q = 0.05; q < 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(a.QuantileOrNaN(q), whole.QuantileOrNaN(q)) << q;
  }
}

TEST(HdrHistogramTest, MergeRejectsMismatchedConfig) {
  HdrHistogram a = Make(2), b = Make(3);
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kIncompatible);
  HdrHistogram c = Make(2, 1 << 20);
  EXPECT_EQ(a.MergeFrom(c).code(), StatusCode::kIncompatible);
}

TEST(HdrHistogramTest, FootprintIsRangeDependentNotDataDependent) {
  // The paper's point: HDR preallocates for the whole range.
  HdrHistogram h = Make(2, uint64_t{1} << 41);
  const size_t empty_size = h.size_in_bytes();
  EXPECT_GT(empty_size, 30000u);  // tens of kB for d=2 over 2^41 (Figure 6)
  for (int i = 0; i < 100000; ++i) h.Record(1 + i % 1000);
  EXPECT_EQ(h.size_in_bytes(), empty_size);  // unchanged by data
}

TEST(HdrDoubleHistogramTest, CreateValidation) {
  EXPECT_FALSE(HdrDoubleHistogram::Create(2, 0.0, 10.0).ok());
  EXPECT_FALSE(HdrDoubleHistogram::Create(2, 5.0, 5.0).ok());
  EXPECT_FALSE(HdrDoubleHistogram::Create(2, 1e-30, 1e30).ok());  // too wide
  EXPECT_TRUE(HdrDoubleHistogram::Create(2, 0.01, 1e6).ok());
}

TEST(HdrDoubleHistogramTest, RelativeErrorOnFractionalData) {
  auto r = HdrDoubleHistogram::Create(2, 0.076, 11.122);  // power data range
  ASSERT_TRUE(r.ok());
  HdrDoubleHistogram h = std::move(r).value();
  Rng rng(84);
  std::vector<double> data;
  for (int i = 0; i < 100000; ++i) {
    const double v = 0.076 + rng.NextDouble() * (11.122 - 0.076);
    data.push_back(v);
    h.Record(v);
  }
  ExactQuantiles truth(data);
  for (double q : {0.05, 0.5, 0.95, 0.99}) {
    EXPECT_LE(RelativeError(h.QuantileOrNaN(q), truth.Quantile(q)), 0.011)
        << q;
  }
}

TEST(HdrDoubleHistogramTest, RejectsNegativeAndNonFinite) {
  auto h = std::move(HdrDoubleHistogram::Create(2, 1.0, 1e6)).value();
  h.Record(-5.0);
  h.Record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.rejected_count(), 2u);
}

TEST(HdrDoubleHistogramTest, MergeRequiresSameScale) {
  auto a = std::move(HdrDoubleHistogram::Create(2, 1.0, 1e6)).value();
  auto b = std::move(HdrDoubleHistogram::Create(2, 2.0, 1e6)).value();
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kIncompatible);
  auto c = std::move(HdrDoubleHistogram::Create(2, 1.0, 1e6)).value();
  a.Record(5.0);
  c.Record(7.0);
  ASSERT_TRUE(a.MergeFrom(c).ok());
  EXPECT_EQ(a.count(), 2u);
}

TEST(HdrDoubleHistogramTest, LosesAccuracyBelowExpectedMin) {
  // The bounded-range caveat: values below the design minimum quantize
  // coarsely. This is exactly the limitation the paper contrasts with
  // DDSketch (Table 1: "bounded" range).
  auto h = std::move(HdrDoubleHistogram::Create(2, 1.0, 1e6)).value();
  std::vector<double> data;
  Rng rng(85);
  for (int i = 0; i < 10000; ++i) {
    const double v = 0.0001 + rng.NextDouble() * 0.001;  // far below min=1
    data.push_back(v);
    h.Record(v);
  }
  ExactQuantiles truth(data);
  const double err = RelativeError(h.QuantileOrNaN(0.5), truth.Quantile(0.5));
  EXPECT_GT(err, 0.01);  // guarantee does not hold out of range
}

}  // namespace
}  // namespace dd
