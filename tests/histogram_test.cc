#include "histogram/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

TEST(EquiDepthTest, Validation) {
  EXPECT_FALSE(BuildEquiDepth({}, 4).ok());
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_FALSE(BuildEquiDepth(xs, 0).ok());
  EXPECT_TRUE(BuildEquiDepth(xs, 2).ok());
  EXPECT_TRUE(BuildEquiDepth(xs, 10).ok());  // clamps to n buckets
}

TEST(EquiDepthTest, EqualCounts) {
  std::vector<double> xs(1000);
  Rng rng(171);
  for (double& x : xs) x = rng.NextDouble();
  auto h = std::move(BuildEquiDepth(xs, 10)).value();
  ASSERT_EQ(h.buckets().size(), 10u);
  for (const auto& b : h.buckets()) EXPECT_EQ(b.count, 100u);
  EXPECT_EQ(h.total_count(), 1000u);
}

TEST(EquiDepthTest, RemainderDistributed) {
  std::vector<double> xs(103);
  for (size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  auto h = std::move(BuildEquiDepth(xs, 10)).value();
  uint64_t total = 0;
  for (const auto& b : h.buckets()) {
    EXPECT_GE(b.count, 10u);
    EXPECT_LE(b.count, 11u);
    total += b.count;
  }
  EXPECT_EQ(total, 103u);
}

TEST(EquiDepthTest, QuantilesFromOwnData) {
  // With B buckets, any quantile answer is within 1/B rank of correct.
  std::vector<double> xs(10000);
  Rng rng(172);
  for (double& x : xs) x = std::exp(rng.NextDouble() * 6);
  auto h = std::move(BuildEquiDepth(xs, 50)).value();
  ExactQuantiles truth(xs);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_LE(RankError(truth, q, h.QuantileOrNaN(q)), 1.0 / 50 + 0.001) << q;
  }
}

TEST(EquiDepthTest, NonMergeabilityDemonstrated) {
  // The paper, §1.2: "Equi-depth histograms are a good example of
  // non-mergeable data set synopses as there is no way to accurately
  // combine overlapping buckets." One merge under the uniform-within-
  // bucket assumption loses a little; the paper's setting merges *many*
  // worker synopses, and the loss compounds through the merge tree while
  // a histogram rebuilt from the union (what a mergeable sketch delivers)
  // keeps its 1/B resolution.
  Rng rng(173);
  constexpr int kParts = 64;
  constexpr size_t kB = 32;
  std::vector<Histogram> parts;
  std::vector<double> all;
  for (int p = 0; p < kParts; ++p) {
    std::vector<double> chunk;
    // Heavy-tailed worker streams at staggered scales: the merged
    // histogram's wide upper buckets carry strongly non-uniform mass.
    const double scale = std::pow(1.35, p % 16);
    for (int i = 0; i < 2000; ++i) {
      chunk.push_back(scale * std::pow(rng.NextDoubleOpenZero(), -1.0));
    }
    parts.push_back(std::move(BuildEquiDepth(chunk, kB)).value());
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  // Pairwise naive-merge tree (6 levels deep).
  std::vector<Histogram> level = std::move(parts);
  while (level.size() > 1) {
    std::vector<Histogram> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(Histogram::NaiveMerge(level[i], level[i + 1], kB));
    }
    level = std::move(next);
  }
  auto rebuilt = std::move(BuildEquiDepth(all, kB)).value();
  ExactQuantiles truth(all);

  // Rank space: the rebuilt histogram keeps its 1/B resolution guarantee.
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_LE(RankError(truth, q, rebuilt.QuantileOrNaN(q)),
              1.0 / kB + 0.001)
        << q;
  }
  // Value space: the naive merge tree must answer quantiles from
  // uniform-assumption segment midpoints, which on heavy tails is
  // catastrophically worse than answering from retained data points —
  // "no way to accurately combine overlapping buckets".
  double naive_worst = 0, rebuilt_worst = 0;
  for (double q : {0.5, 0.75, 0.9}) {
    const double actual = truth.Quantile(q);
    naive_worst = std::max(
        naive_worst, RelativeError(level[0].QuantileOrNaN(q), actual));
    rebuilt_worst = std::max(
        rebuilt_worst, RelativeError(rebuilt.QuantileOrNaN(q), actual));
  }
  EXPECT_GT(naive_worst, 2 * rebuilt_worst);
}

TEST(VOptimalTest, Validation) {
  EXPECT_FALSE(BuildVOptimal({}, 4).ok());
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_FALSE(BuildVOptimal(xs, 0).ok());
  std::vector<double> big(30000, 1.0);
  EXPECT_EQ(BuildVOptimal(big, 4).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(BuildVOptimalGreedy(big, 4).ok());
}

TEST(VOptimalTest, PerfectFitWhenBucketsEqualClusters) {
  // Three tight clusters, three buckets: SSE must be (near) zero and the
  // splits land exactly between clusters.
  std::vector<double> xs;
  Rng rng(174);
  for (double center : {10.0, 100.0, 1000.0}) {
    for (int i = 0; i < 50; ++i) xs.push_back(center + rng.NextDouble());
  }
  auto h = std::move(BuildVOptimal(xs, 3)).value();
  ASSERT_EQ(h.buckets().size(), 3u);
  std::vector<double> sorted(xs);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_LT(h.SquaredError(sorted), 50.0);  // within-cluster variance only
  EXPECT_EQ(h.buckets()[0].count, 50u);
  EXPECT_EQ(h.buckets()[1].count, 50u);
  EXPECT_EQ(h.buckets()[2].count, 50u);
}

TEST(VOptimalTest, MatchesBruteForceOnSmallInputs) {
  // Exhaustive check of DP optimality: all 2-splits of 12 items.
  Rng rng(175);
  std::vector<double> xs(12);
  for (double& x : xs) x = rng.NextDouble() * 100;
  std::sort(xs.begin(), xs.end());
  auto sse = [&](size_t i, size_t j) {
    double mean = 0;
    for (size_t p = i; p < j; ++p) mean += xs[p];
    mean /= static_cast<double>(j - i);
    double err = 0;
    for (size_t p = i; p < j; ++p) err += (xs[p] - mean) * (xs[p] - mean);
    return err;
  };
  double brute = std::numeric_limits<double>::infinity();
  for (size_t a = 1; a < xs.size() - 1; ++a) {
    for (size_t b = a + 1; b < xs.size(); ++b) {
      brute = std::min(brute, sse(0, a) + sse(a, b) + sse(b, xs.size()));
    }
  }
  auto h = std::move(BuildVOptimal(xs, 3)).value();
  EXPECT_NEAR(h.SquaredError(xs), brute, 1e-9);
}

TEST(VOptimalTest, BeatsEquiDepthOnSkewedData) {
  // The whole point of v-optimal: lower L2 error than equal-count buckets
  // for the same B.
  const auto xs = GenerateDataset(DatasetId::kPareto, 5000);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  constexpr size_t kB = 16;
  auto voptimal = std::move(BuildVOptimal(xs, kB)).value();
  auto equidepth = std::move(BuildEquiDepth(xs, kB)).value();
  EXPECT_LT(voptimal.SquaredError(sorted), equidepth.SquaredError(sorted));
}

TEST(VOptimalTest, GreedyCloseToExact) {
  Rng rng(176);
  std::vector<double> xs(2000);
  for (double& x : xs) x = std::exp(rng.NextDouble() * 4);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  constexpr size_t kB = 12;
  auto exact = std::move(BuildVOptimal(xs, kB)).value();
  auto greedy = std::move(BuildVOptimalGreedy(xs, kB)).value();
  const double exact_err = exact.SquaredError(sorted);
  const double greedy_err = greedy.SquaredError(sorted);
  EXPECT_GE(greedy_err, exact_err * (1 - 1e-9));  // exact really is optimal
  EXPECT_LE(greedy_err, exact_err * 3 + 1e-9);    // greedy in the ballpark
}

TEST(VOptimalTest, NoPerQuantileGuarantee) {
  // §1.2: "there are no guarantees on the error of any particular
  // quantile query" — the global-L2-optimal histogram can still be
  // relatively far off on a specific quantile of skewed data, where
  // DDSketch is pinned to alpha.
  const auto xs = GenerateDataset(DatasetId::kPareto, 5000);
  auto h = std::move(BuildVOptimal(xs, 16)).value();
  ExactQuantiles truth(xs);
  double worst = 0;
  for (double q = 0.05; q <= 0.95; q += 0.05) {
    worst = std::max(worst,
                     RelativeError(h.QuantileOrNaN(q), truth.Quantile(q)));
  }
  EXPECT_GT(worst, 0.01);  // some quantile is worse than DDSketch's bound
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram h({{0, 1, 10, 0.5}, {1, 2, 10, 1.5}});
  EXPECT_DOUBLE_EQ(h.QuantileOrNaN(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.QuantileOrNaN(1.0), 1.5);
  EXPECT_TRUE(std::isnan(h.QuantileOrNaN(-0.1)));
  EXPECT_TRUE(std::isnan(h.QuantileOrNaN(1.1)));
}

TEST(HistogramTest, NaiveMergePreservesTotalCountApproximately) {
  Rng rng(177);
  std::vector<double> a(5000), b(5000);
  for (double& x : a) x = rng.NextDouble() * 10;
  for (double& x : b) x = 5 + rng.NextDouble() * 10;
  auto ha = std::move(BuildEquiDepth(a, 20)).value();
  auto hb = std::move(BuildEquiDepth(b, 20)).value();
  auto merged = Histogram::NaiveMerge(ha, hb, 20);
  EXPECT_EQ(merged.buckets().size(), 20u);
  // Counts survive up to the rounding of the uniform-overlap split.
  EXPECT_NEAR(static_cast<double>(merged.total_count()), 10000.0, 50.0);
}

}  // namespace
}  // namespace dd
