// Differential property test for the insert hot path: the devirtualized
// fast path (FastIndex + DenseStore::TryAddFast/TryAddFastRun, the
// default) and the seed's generic virtual path (pinned via
// DDSketchConfig::reference_insert_path) must be observationally
// identical under arbitrary interleavings of Add / AddBatch / Remove /
// MergeFrom — including clamped magnitudes, sub-min-indexable values,
// NaN/inf rejects, negatives, and collapse-inducing spreads.
//
// Bucket contents are compared exactly; sum() only up to floating-point
// rounding, because the batch path reduces it with interleaved
// accumulators (a different association order than sequential adds, which
// is all MergeFrom ever promised for sums anyway).

#include "core/ddsketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "util/rng.h"

namespace dd {
namespace {

DDSketch MakeSketch(const DDSketchConfig& base, bool reference) {
  DDSketchConfig config = base;
  config.reference_insert_path = reference;
  auto r = DDSketch::Create(config);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::map<int32_t, uint64_t> Buckets(const Store& store) {
  std::map<int32_t, uint64_t> out;
  store.ForEach([&](int32_t index, uint64_t count) { out[index] = count; });
  return out;
}

void ExpectIdentical(const DDSketch& fast, const DDSketch& ref,
                     const char* where) {
  ASSERT_EQ(fast.count(), ref.count()) << where;
  ASSERT_EQ(fast.zero_count(), ref.zero_count()) << where;
  ASSERT_EQ(fast.rejected_count(), ref.rejected_count()) << where;
  ASSERT_EQ(fast.clamped_count(), ref.clamped_count()) << where;
  ASSERT_EQ(fast.num_buckets(), ref.num_buckets()) << where;
  ASSERT_EQ(fast.min(), ref.min()) << where;
  ASSERT_EQ(fast.max(), ref.max()) << where;
  ASSERT_EQ(Buckets(fast.positive_store()), Buckets(ref.positive_store()))
      << where;
  ASSERT_EQ(Buckets(fast.negative_store()), Buckets(ref.negative_store()))
      << where;
  // Near-DBL_MAX inputs (the clamp regime) overflow the running sum in
  // both paths; once either side has left the finite range the two
  // reassociated reductions may land on different non-finite garbage, so
  // only the finite case is comparable.
  if (std::isfinite(fast.sum()) && std::isfinite(ref.sum())) {
    const double tolerance =
        1e-9 * std::max({1.0, std::abs(fast.sum()), std::abs(ref.sum())});
    ASSERT_NEAR(fast.sum(), ref.sum(), tolerance) << where;
  } else {
    ASSERT_EQ(std::isfinite(fast.sum()), std::isfinite(ref.sum())) << where;
  }
  if (!fast.empty()) {
    for (double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
      // Identical buckets and extremes make the estimates bit-identical.
      ASSERT_EQ(fast.QuantileOrNaN(q), ref.QuantileOrNaN(q))
          << where << " q=" << q;
    }
  }
}

/// Value generator mixing the interesting regimes: ordinary magnitudes,
/// negatives, clamped extremes, zero-bucket dust, exact zero, and the
/// occasional NaN/inf reject.
double NextValue(Rng& rng) {
  const uint64_t kind = rng.NextBounded(100);
  const double u = rng.NextDouble();
  if (kind < 55) return 1e-3 + u * 1e6;                   // common positives
  if (kind < 75) return -(1e-3 + u * 1e6);                // common negatives
  if (kind < 82) {  // clamped extremes (beyond max_indexable, both signs)
    return (u < 0.5 ? -1.0 : 1.0) * (1e308 + u * 7e307);
  }
  if (kind < 88) return (u - 0.5) * 1e-308;               // zero-bucket dust
  if (kind < 92) return 0.0;                              // exact zero
  if (kind < 94) return std::numeric_limits<double>::quiet_NaN();
  if (kind < 96) return (kind % 2 == 0 ? 1 : -1) *
                        std::numeric_limits<double>::infinity();
  // Wide magnitude sweep: exercises growth and collapse.
  return std::ldexp(1.0 + u, static_cast<int>(rng.NextBounded(2000)) - 1000);
}

struct NamedConfig {
  const char* name;
  DDSketchConfig config;
};

std::vector<NamedConfig> Configs() {
  std::vector<NamedConfig> out;
  {
    DDSketchConfig c;  // the default: log mapping, collapsing dense
    c.max_num_buckets = 128;  // small bound: collapses happen constantly
    out.push_back({"log/collapsing", c});
  }
  {
    DDSketchConfig c;
    c.mapping = MappingType::kCubicInterpolated;
    c.store = StoreType::kUnboundedDense;
    out.push_back({"cubic/unbounded", c});
  }
  {
    DDSketchConfig c;
    c.mapping = MappingType::kLinearInterpolated;
    c.max_num_buckets = 64;
    out.push_back({"linear/collapsing", c});
  }
  {
    DDSketchConfig c;
    c.mapping = MappingType::kQuadraticInterpolated;
    c.store = StoreType::kSparse;
    c.max_num_buckets = 0;
    out.push_back({"quadratic/sparse", c});
  }
  return out;
}

TEST(InsertDifferentialTest, InterleavedOpsMatchReferencePath) {
  for (const NamedConfig& named : Configs()) {
    SCOPED_TRACE(named.name);
    Rng rng(0xDD5C);
    DDSketch fast = MakeSketch(named.config, /*reference=*/false);
    DDSketch ref = MakeSketch(named.config, /*reference=*/true);
    // A second pair fed in tandem, as the MergeFrom source.
    DDSketch fast_other = MakeSketch(named.config, /*reference=*/false);
    DDSketch ref_other = MakeSketch(named.config, /*reference=*/true);
    std::vector<double> recent;  // removal candidates, clamped values included

    for (int op = 0; op < 3000; ++op) {
      const uint64_t kind = rng.NextBounded(100);
      if (kind < 45) {
        const double v = NextValue(rng);
        const uint64_t n = 1 + rng.NextBounded(3);
        fast.Add(v, n);
        ref.Add(v, n);
        if (recent.size() < 512) recent.push_back(v);
      } else if (kind < 65) {
        std::vector<double> batch;
        const size_t n = 1 + rng.NextBounded(700);  // crosses chunk size
        batch.reserve(n);
        for (size_t i = 0; i < n; ++i) batch.push_back(NextValue(rng));
        fast.AddBatch(batch);
        ref.AddBatch(batch);
        if (!batch.empty() && recent.size() < 512) {
          recent.push_back(batch.front());
        }
      } else if (kind < 85) {
        // Remove something previously added (often) or arbitrary (rarely):
        // both sketches must agree on how much came out either way.
        const double v = (!recent.empty() && rng.NextBounded(4) != 0)
                             ? recent[rng.NextBounded(recent.size())]
                             : NextValue(rng);
        const uint64_t n = 1 + rng.NextBounded(2);
        ASSERT_EQ(fast.Remove(v, n), ref.Remove(v, n)) << "op " << op;
      } else if (kind < 95) {
        const double v = NextValue(rng);
        fast_other.Add(v);
        ref_other.Add(v);
      } else {
        ASSERT_TRUE(fast.MergeFrom(fast_other).ok());
        ASSERT_TRUE(ref.MergeFrom(ref_other).ok());
      }
      if (op % 100 == 99) ExpectIdentical(fast, ref, "periodic");
    }
    ExpectIdentical(fast, ref, "final");
  }
}

TEST(InsertDifferentialTest, BatchEqualsScalarAdds) {
  // AddBatch against one-value-at-a-time Add on the same (fast) config:
  // catches batch-only bookkeeping drift independent of the reference
  // path knob.
  DDSketchConfig config;
  config.mapping = MappingType::kCubicInterpolated;
  config.max_num_buckets = 256;
  DDSketch batched = MakeSketch(config, false);
  DDSketch scalar = MakeSketch(config, false);
  Rng rng(0xBA7C);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(NextValue(rng));
  batched.AddBatch(values);
  for (double v : values) scalar.Add(v);
  ExpectIdentical(batched, scalar, "batch-vs-scalar");
}

}  // namespace
}  // namespace dd
