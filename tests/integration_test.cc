// End-to-end scenarios spanning all modules: the monitoring pipeline of the
// paper's introduction (workers -> serialized sketches -> aggregator ->
// quantile dashboards), and cross-sketch comparisons that pin down the
// qualitative results of Section 4 / Table 1.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/ddsketch.h"
#include "data/datasets.h"
#include "data/ground_truth.h"
#include "gk/gkarray.h"
#include "hdr/hdr_histogram.h"
#include "moments/moment_sketch.h"
#include "util/rng.h"
#include "util/running_stats.h"

namespace dd {
namespace {

TEST(PipelineTest, WorkersSerializeAggregatorMerges) {
  // 50 workers, each handling a second of traffic, ship serialized sketches
  // to an aggregator; the aggregated quantiles must be alpha-accurate for
  // the full traffic and exactly equal to a hypothetical global sketch.
  constexpr int kWorkers = 50;
  constexpr int kRequestsPerWorker = 2000;
  const double alpha = 0.01;

  auto dataset = MakeDataset(DatasetId::kWebLatency);
  std::vector<double> all_latencies;
  std::vector<std::string> wire_payloads;
  auto global = std::move(DDSketch::Create(alpha)).value();

  for (int w = 0; w < kWorkers; ++w) {
    DataStream stream(dataset->Clone(), /*seed=*/9000 + w);
    auto local = std::move(DDSketch::Create(alpha)).value();
    for (int i = 0; i < kRequestsPerWorker; ++i) {
      const double latency = stream.Next();
      local.Add(latency);
      global.Add(latency);
      all_latencies.push_back(latency);
    }
    wire_payloads.push_back(local.Serialize());
  }

  auto aggregated = std::move(DDSketch::Create(alpha)).value();
  for (const std::string& payload : wire_payloads) {
    auto decoded = DDSketch::Deserialize(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_TRUE(aggregated.MergeFrom(decoded.value()).ok());
  }

  ASSERT_EQ(aggregated.count(), all_latencies.size());
  ExactQuantiles truth(all_latencies);
  for (double q : {0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
    EXPECT_LE(RelativeError(aggregated.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
    EXPECT_DOUBLE_EQ(aggregated.QuantileOrNaN(q), global.QuantileOrNaN(q))
        << q;
  }
}

TEST(PipelineTest, TimeRollupAcrossIntervals) {
  // Per-second sketches rolled up to a minute and an hour: quantiles stay
  // accurate at every rollup level (the rolling-up use case of §1).
  const double alpha = 0.01;
  auto dataset = MakeDataset(DatasetId::kWebLatency);
  DataStream stream(dataset->Clone(), 424242);

  std::vector<double> hour_data;
  auto hour = std::move(DDSketch::Create(alpha)).value();
  for (int minute = 0; minute < 60; ++minute) {
    auto minute_sketch = std::move(DDSketch::Create(alpha)).value();
    for (int second = 0; second < 60; ++second) {
      auto second_sketch = std::move(DDSketch::Create(alpha)).value();
      for (int i = 0; i < 20; ++i) {
        const double x = stream.Next();
        second_sketch.Add(x);
        hour_data.push_back(x);
      }
      ASSERT_TRUE(minute_sketch.MergeFrom(second_sketch).ok());
    }
    ASSERT_TRUE(hour.MergeFrom(minute_sketch).ok());
  }
  ExactQuantiles truth(hour_data);
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_LE(RelativeError(hour.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
}

TEST(ComparisonTest, Figure2MeanIsMisleadingOnSkewedData) {
  // The paper's Figure 2: the mean latency tracks ~p75, not the median.
  auto dataset = MakeDataset(DatasetId::kWebLatency);
  const auto data = GenerateN(*dataset, 200000, 31337);
  RunningStats stats;
  for (double x : data) stats.Add(x);
  ExactQuantiles truth(data);
  EXPECT_GT(stats.mean(), 1.5 * truth.Quantile(0.5));
}

TEST(ComparisonTest, Table1RelativeErrorSketchesBeatRankErrorOnTails) {
  // On heavy-tailed data, DDSketch and HDR keep p99 relative error near
  // their guarantee while GK and Moments are off by much more (Figure 10).
  const auto data = GenerateDataset(DatasetId::kPareto, 300000, 13);
  ExactQuantiles truth(data);

  auto ddsketch = std::move(DDSketch::Create(0.01)).value();
  auto gk = std::move(GKArray::Create(0.01)).value();
  auto hdr = std::move(HdrDoubleHistogram::Create(2, 1.0, 1e9)).value();
  auto moments = std::move(MomentSketch::Create(20, true)).value();
  for (double x : data) {
    ddsketch.Add(x);
    gk.Add(x);
    hdr.Record(x);
    moments.Add(x);
  }
  const double p99 = truth.Quantile(0.99);
  const double dd_err = RelativeError(ddsketch.QuantileOrNaN(0.99), p99);
  const double hdr_err = RelativeError(hdr.QuantileOrNaN(0.99), p99);
  const double gk_err = RelativeError(gk.QuantileOrNaN(0.99), p99);

  EXPECT_LE(dd_err, 0.01 * (1 + 1e-9));
  EXPECT_LE(hdr_err, 0.011);
  EXPECT_GT(gk_err, dd_err);
}

TEST(ComparisonTest, MomentsStrugglesOnWideRangeSpanData) {
  // Figure 10, span column: "the Moments sketch has particular difficulty
  // with the span data set as it has trouble dealing with such a large
  // range of values". On ten orders of magnitude the scaled-moment
  // conversion loses precision and the estimates degrade far beyond
  // DDSketch's guarantee (or the solve fails outright).
  const auto data = GenerateDataset(DatasetId::kSpan, 300000, 18);
  ExactQuantiles truth(data);
  auto ddsketch = std::move(DDSketch::Create(0.01)).value();
  auto moments = std::move(MomentSketch::Create(20, true)).value();
  for (double x : data) {
    ddsketch.Add(x);
    moments.Add(x);
  }
  double worst_moments = 0.0;
  for (double q : {0.5, 0.95, 0.99}) {
    const double actual = truth.Quantile(q);
    EXPECT_LE(RelativeError(ddsketch.QuantileOrNaN(q), actual),
              0.01 * (1 + 1e-9))
        << q;
    const double mo = moments.QuantileOrNaN(q);
    const double err = std::isnan(mo)
                           ? std::numeric_limits<double>::infinity()
                           : RelativeError(mo, actual);
    worst_moments = std::max(worst_moments, err);
  }
  EXPECT_GT(worst_moments, 0.01);
}

TEST(ComparisonTest, Table1GKHonorsRankErrorEverywhere) {
  const auto data = GenerateDataset(DatasetId::kSpan, 200000, 14);
  ExactQuantiles truth(data);
  auto gk = std::move(GKArray::Create(0.01)).value();
  for (double x : data) gk.Add(x);
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    EXPECT_LE(RankError(truth, q, gk.QuantileOrNaN(q)), 0.0105) << q;
  }
}

TEST(ComparisonTest, Table1RangeProperties) {
  // DDSketch: arbitrary range. HDR: bounded range. Demonstrated by feeding
  // a value far outside any pre-declared range.
  auto ddsketch = std::move(DDSketch::Create(0.01)).value();
  ddsketch.Add(1e-200);
  ddsketch.Add(1e200);
  EXPECT_EQ(ddsketch.count(), 2u);
  EXPECT_LE(RelativeError(ddsketch.QuantileOrNaN(0.0), 1e-200), 0.01);
  EXPECT_LE(RelativeError(ddsketch.QuantileOrNaN(1.0), 1e200), 0.01);

  // HDR cannot even be configured for that span.
  EXPECT_FALSE(HdrDoubleHistogram::Create(2, 1e-200, 1e200).ok());
}

TEST(ComparisonTest, Figure6SizeOrdering) {
  // Moments < GK ~ DDSketch << HDR on the heavy-tailed sets.
  const auto data = GenerateDataset(DatasetId::kSpan, 100000, 15);
  auto ddsketch = std::move(DDSketch::Create(0.01)).value();
  auto gk = std::move(GKArray::Create(0.01)).value();
  auto hdr = std::move(HdrDoubleHistogram::Create(2, 100.0, 1.9e12)).value();
  auto moments = std::move(MomentSketch::Create(20, true)).value();
  for (double x : data) {
    ddsketch.Add(x);
    gk.Add(x);
    hdr.Record(x);
    moments.Add(x);
  }
  gk.Flush();
  EXPECT_LT(moments.size_in_bytes(), gk.size_in_bytes());
  EXPECT_LT(moments.size_in_bytes(), ddsketch.size_in_bytes());
  EXPECT_LT(ddsketch.size_in_bytes(), hdr.size_in_bytes());
}

TEST(ComparisonTest, AllSketchesAgreeOnDenseNarrowData) {
  // The power data set is the easy case: every sketch family should give
  // usable answers (within a few percent).
  const auto data = GenerateDataset(DatasetId::kPower, 200000, 16);
  ExactQuantiles truth(data);
  auto ddsketch = std::move(DDSketch::Create(0.01)).value();
  auto gk = std::move(GKArray::Create(0.01)).value();
  auto hdr = std::move(HdrDoubleHistogram::Create(2, 0.076, 11.122)).value();
  auto moments = std::move(MomentSketch::Create(20, true)).value();
  for (double x : data) {
    ddsketch.Add(x);
    gk.Add(x);
    hdr.Record(x);
    moments.Add(x);
  }
  for (double q : {0.5, 0.95}) {
    const double actual = truth.Quantile(q);
    EXPECT_LE(RelativeError(ddsketch.QuantileOrNaN(q), actual), 0.01) << q;
    EXPECT_LE(RelativeError(hdr.QuantileOrNaN(q), actual), 0.011) << q;
    EXPECT_LE(RelativeError(gk.QuantileOrNaN(q), actual), 0.05) << q;
    EXPECT_LE(RelativeError(moments.QuantileOrNaN(q), actual), 0.10) << q;
  }
}

TEST(RobustnessTest, SketchSurvivesPathologicalStream) {
  // NaNs, infinities, zeros, denormals, sign flips, huge magnitudes — the
  // sketch must stay consistent and keep answering.
  auto s = std::move(DDSketch::Create(0.01)).value();
  Rng rng(17);
  uint64_t accepted = 0;
  for (int i = 0; i < 10000; ++i) {
    switch (rng.NextBounded(8)) {
      case 0:
        s.Add(std::nan(""));
        break;
      case 1:
        s.Add(std::numeric_limits<double>::infinity());
        break;
      case 2:
        s.Add(0.0);
        ++accepted;
        break;
      case 3:
        s.Add(5e-324);
        ++accepted;
        break;
      case 4:
        s.Add(-std::exp(rng.NextDouble() * 100));
        ++accepted;
        break;
      case 5:
        s.Add(std::numeric_limits<double>::max());
        ++accepted;
        break;
      default:
        s.Add(rng.NextDoubleOpenZero());
        ++accepted;
    }
  }
  EXPECT_EQ(s.count(), accepted);
  EXPECT_TRUE(std::isfinite(s.QuantileOrNaN(0.5)));
  // Round-trip the battered sketch.
  auto decoded = DDSketch::Deserialize(s.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().count(), accepted);
}

}  // namespace
}  // namespace dd
