#include "kll/kll_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

KllSketch Make(int k = 200, uint64_t seed = 1) {
  auto r = KllSketch::Create(k, seed);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(KllTest, CreateValidation) {
  EXPECT_FALSE(KllSketch::Create(4).ok());
  EXPECT_FALSE(KllSketch::Create(100000).ok());
  EXPECT_TRUE(KllSketch::Create(8).ok());
  EXPECT_TRUE(KllSketch::Create(200).ok());
}

TEST(KllTest, EmptyAndValidation) {
  KllSketch s = Make();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Quantile(0.5).ok());
  EXPECT_TRUE(std::isnan(s.QuantileOrNaN(0.5)));
  s.Add(1.0);
  EXPECT_FALSE(s.Quantile(-1).ok());
  EXPECT_FALSE(s.Quantile(1.1).ok());
}

TEST(KllTest, SmallStreamExact) {
  // Below capacity nothing compacts: answers are exact order statistics.
  KllSketch s = Make();
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.QuantileOrNaN(1.0), 5.0);
}

TEST(KllTest, WeightConservation) {
  // Retained weights always sum to the stream count, at any moment.
  KllSketch s = Make(64);
  Rng rng(161);
  for (int i = 1; i <= 100000; ++i) {
    s.Add(rng.NextDouble());
    if (i % 9973 == 0) {
      // Weight sum check via CdfOrNaN at +inf-like probe.
      EXPECT_DOUBLE_EQ(s.CdfOrNaN(2.0), 1.0) << i;
      EXPECT_EQ(s.count(), static_cast<uint64_t>(i));
    }
  }
}

TEST(KllTest, SpaceStaysBounded) {
  KllSketch s = Make(200);
  Rng rng(162);
  for (int i = 0; i < 2000000; ++i) s.Add(rng.NextDouble());
  // O(k) retained: k + k*2/3 + ... ~ 3k, plus per-level slack.
  EXPECT_LT(s.num_retained(), 1000u);
  EXPECT_LT(s.size_in_bytes(), 64 * 1024u);
  EXPECT_GT(s.num_levels(), 5u);  // 2M values need ~ log(n/k) levels
}

class KllRankErrorTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(KllRankErrorTest, RankErrorSmallOnAllDatasets) {
  KllSketch s = Make(400, 7);
  const auto data = GenerateDataset(GetParam(), 200000);
  for (double x : data) s.Add(x);
  ExactQuantiles truth(data);
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    EXPECT_LE(RankError(truth, q, s.QuantileOrNaN(q)), 0.02) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, KllRankErrorTest,
                         ::testing::ValuesIn(kPaperDatasets),
                         [](const ::testing::TestParamInfo<DatasetId>& info) {
                           return DatasetIdToString(info.param);
                         });

TEST(KllTest, AccuracyImprovesWithK) {
  const auto data = GenerateDataset(DatasetId::kPareto, 300000);
  ExactQuantiles truth(data);
  auto worst_rank_err = [&](int k) {
    // Average over seeds: KLL is randomized.
    double total = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      KllSketch s = Make(k, seed);
      for (double x : data) s.Add(x);
      double worst = 0;
      for (double q = 0.1; q < 1.0; q += 0.1) {
        worst = std::max(worst, RankError(truth, q, s.QuantileOrNaN(q)));
      }
      total += worst;
    }
    return total / 5;
  };
  const double err_small = worst_rank_err(32);
  const double err_large = worst_rank_err(512);
  EXPECT_LT(err_large, err_small / 2);
  EXPECT_LT(err_large, 0.01);
}

TEST(KllTest, FullMergeabilityAcrossTreeShapes) {
  // KLL is fully mergeable: merged sketches keep the rank guarantee
  // regardless of tree depth (randomization differs, exact equality is
  // not expected — the *guarantee* must survive).
  const auto data = GenerateDataset(DatasetId::kSpan, 128000);
  ExactQuantiles truth(data);
  std::vector<KllSketch> level;
  for (int i = 0; i < 32; ++i) {
    level.push_back(Make(400, 100 + static_cast<uint64_t>(i)));
    for (int j = 0; j < 4000; ++j) level.back().Add(data[i * 4000 + j]);
  }
  while (level.size() > 1) {
    std::vector<KllSketch> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      KllSketch m = level[i];
      ASSERT_TRUE(m.MergeFrom(level[i + 1]).ok());
      next.push_back(std::move(m));
    }
    level = std::move(next);
  }
  EXPECT_EQ(level[0].count(), data.size());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(RankError(truth, q, level[0].QuantileOrNaN(q)), 0.03) << q;
  }
  // Space also stays bounded through the merge tree.
  EXPECT_LT(level[0].num_retained(), 2000u);
}

TEST(KllTest, MergeRejectsMismatchedK) {
  KllSketch a = Make(200), b = Make(100);
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kIncompatible);
}

TEST(KllTest, MergeWithEmpty) {
  KllSketch a = Make(), b = Make();
  a.Add(1.0);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.count(), 1u);
  ASSERT_TRUE(b.MergeFrom(a).ok());
  EXPECT_DOUBLE_EQ(b.QuantileOrNaN(0.5), 1.0);
}

TEST(KllTest, DeterministicForFixedSeed) {
  const auto data = GenerateDataset(DatasetId::kPareto, 50000);
  KllSketch a = Make(200, 42), b = Make(200, 42);
  for (double x : data) {
    a.Add(x);
    b.Add(x);
  }
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(a.QuantileOrNaN(q), b.QuantileOrNaN(q)) << q;
  }
}

TEST(KllTest, ExactExtremes) {
  KllSketch s = Make();
  Rng rng(163);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 500000; ++i) {
    const double x = rng.NextDouble() * 2e6 - 1e6;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    s.Add(x);
  }
  EXPECT_EQ(s.QuantileOrNaN(0.0), lo);
  EXPECT_EQ(s.QuantileOrNaN(1.0), hi);
}

TEST(KllTest, CdfConsistentWithQuantile) {
  KllSketch s = Make(400);
  Rng rng(164);
  for (int i = 0; i < 200000; ++i) s.Add(rng.NextDouble() * 100);
  for (double q = 0.1; q <= 0.9; q += 0.1) {
    EXPECT_NEAR(s.CdfOrNaN(s.QuantileOrNaN(q)), q, 0.02) << q;
  }
}

TEST(KllTest, HighRelativeErrorOnHeavyTailsAsPaperClaims) {
  // §1.2: "all of the above solutions, deterministic or randomized, have
  // high relative error for the larger quantiles on heavy-tailed data
  // (in practice we have found it to be worse for the randomized
  // algorithms)".
  KllSketch s = Make(200, 3);
  const auto data = GenerateDataset(DatasetId::kPareto, 1000000);
  for (double x : data) s.Add(x);
  ExactQuantiles truth(data);
  const double rel99 =
      RelativeError(s.QuantileOrNaN(0.99), truth.Quantile(0.99));
  EXPECT_GT(rel99, 0.01);
}

TEST(KllTest, RejectsNonFinite) {
  KllSketch s = Make();
  s.Add(std::nan(""));
  s.Add(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.rejected_count(), 2u);
}

TEST(KllTest, SortedInputStress) {
  KllSketch s = Make(400, 9);
  std::vector<double> data(300000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i);
    s.Add(data[i]);
  }
  ExactQuantiles truth(data);
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_LE(RankError(truth, q, s.QuantileOrNaN(q)), 0.02) << q;
  }
}

}  // namespace
}  // namespace dd
