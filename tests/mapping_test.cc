#include "core/mapping.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "util/rng.h"

namespace dd {
namespace {

using MappingParam = std::tuple<MappingType, double>;

class MappingTest : public ::testing::TestWithParam<MappingParam> {
 protected:
  void SetUp() override {
    auto r = IndexMapping::Create(std::get<0>(GetParam()),
                                  std::get<1>(GetParam()));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    mapping_ = std::move(r).value();
  }

  double alpha() const { return std::get<1>(GetParam()); }
  std::unique_ptr<IndexMapping> mapping_;
};

TEST_P(MappingTest, GammaMatchesDefinition) {
  const double expected = (1.0 + alpha()) / (1.0 - alpha());
  EXPECT_NEAR(mapping_->gamma(), expected, 1e-12);
  EXPECT_EQ(mapping_->relative_accuracy(), alpha());
}

// The core guarantee (Lemma 2): the representative of any value's bucket is
// within alpha of the value, across ~600 orders of magnitude.
TEST_P(MappingTest, RelativeAccuracyAcrossFullRange) {
  Rng rng(101);
  for (int i = 0; i < 200000; ++i) {
    const int e = static_cast<int>(rng.NextBounded(1200)) - 600;
    const double x = std::ldexp(1.0 + rng.NextDouble(), e);
    if (x < mapping_->min_indexable_value() ||
        x > mapping_->max_indexable_value()) {
      continue;
    }
    const double rep = mapping_->Value(mapping_->Index(x));
    EXPECT_LE(std::abs(rep - x), alpha() * x * (1 + 1e-9))
        << "x=" << x << " rep=" << rep;
  }
}

TEST_P(MappingTest, RelativeAccuracyAtDecadeBoundaries) {
  for (int d = -300; d <= 300; ++d) {
    const double x = std::pow(10.0, d);
    if (x < mapping_->min_indexable_value() ||
        x > mapping_->max_indexable_value()) {
      continue;
    }
    const double rep = mapping_->Value(mapping_->Index(x));
    EXPECT_LE(std::abs(rep - x), alpha() * x * (1 + 1e-9)) << "x=1e" << d;
  }
}

TEST_P(MappingTest, IndexIsMonotone) {
  Rng rng(102);
  for (int i = 0; i < 50000; ++i) {
    const int e = static_cast<int>(rng.NextBounded(600)) - 300;
    const double x = std::ldexp(1.0 + rng.NextDouble(), e);
    const double y = x * (1.0 + rng.NextDouble());
    EXPECT_LE(mapping_->Index(x), mapping_->Index(y))
        << "x=" << x << " y=" << y;
  }
}

TEST_P(MappingTest, RepresentativeMapsBackToItsBucket) {
  Rng rng(103);
  for (int i = 0; i < 20000; ++i) {
    const int e = static_cast<int>(rng.NextBounded(1000)) - 500;
    const double x = std::ldexp(1.0 + rng.NextDouble(), e);
    if (x < mapping_->min_indexable_value() * 4 ||
        x > mapping_->max_indexable_value() / 4) {
      continue;
    }
    const int32_t index = mapping_->Index(x);
    EXPECT_EQ(mapping_->Index(mapping_->Value(index)), index) << "x=" << x;
  }
}

TEST_P(MappingTest, LowerBoundsBracketBucket) {
  Rng rng(104);
  for (int i = 0; i < 20000; ++i) {
    const int e = static_cast<int>(rng.NextBounded(600)) - 300;
    const double x = std::ldexp(1.0 + rng.NextDouble(), e);
    const int32_t index = mapping_->Index(x);
    // x lies in (LowerBound(index), LowerBound(index + 1)], allowing one
    // ulp of slack at the boundaries.
    EXPECT_GT(x * (1 + 1e-12), mapping_->LowerBound(index)) << x;
    EXPECT_LE(x * (1 - 1e-12), mapping_->LowerBound(index + 1)) << x;
  }
}

TEST_P(MappingTest, ConsecutiveBucketsTile) {
  // LowerBound(i+1)/LowerBound(i) <= gamma (within rounding): no bucket
  // wider than the guarantee allows.
  for (int32_t index = -500; index <= 500; index += 7) {
    const double lo = mapping_->LowerBound(index);
    const double hi = mapping_->LowerBound(index + 1);
    EXPECT_GT(hi, lo);
    EXPECT_LE(hi / lo, mapping_->gamma() * (1 + 1e-9)) << index;
  }
}

TEST_P(MappingTest, CloneIsCompatibleAndEquivalent) {
  auto clone = mapping_->Clone();
  EXPECT_TRUE(mapping_->IsCompatibleWith(*clone));
  Rng rng(105);
  for (int i = 0; i < 1000; ++i) {
    const double x = std::ldexp(1.0 + rng.NextDouble(),
                                static_cast<int>(rng.NextBounded(200)) - 100);
    EXPECT_EQ(mapping_->Index(x), clone->Index(x));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMappings, MappingTest,
    ::testing::Combine(
        ::testing::Values(MappingType::kLogarithmic,
                          MappingType::kLinearInterpolated,
                          MappingType::kQuadraticInterpolated,
                          MappingType::kCubicInterpolated),
        ::testing::Values(0.001, 0.01, 0.05, 0.2)),
    [](const ::testing::TestParamInfo<MappingParam>& info) {
      std::string name = MappingTypeToString(std::get<0>(info.param));
      name += "_a";
      name += std::to_string(static_cast<int>(
          std::round(std::get<1>(info.param) * 1000)));
      return name;
    });

TEST(MappingFactoryTest, RejectsBadAccuracy) {
  for (double bad : {0.0, 1.0, -0.5, 2.0}) {
    auto r = IndexMapping::Create(MappingType::kLogarithmic, bad);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(MappingOverheadTest, InterpolatedMappingsCostMoreBuckets) {
  // Buckets needed to span [1, 10^9]: interpolated mappings need more,
  // in the derived ratios (~1.44x, ~1.08x, ~1.01x of optimal).
  const double alpha = 0.01;
  auto make = [&](MappingType t) {
    return std::move(IndexMapping::Create(t, alpha)).value();
  };
  auto span = [&](const IndexMapping& m) {
    return m.Index(1e9) - m.Index(1.0);
  };
  const auto log_m = make(MappingType::kLogarithmic);
  const auto lin = make(MappingType::kLinearInterpolated);
  const auto quad = make(MappingType::kQuadraticInterpolated);
  const auto cubic = make(MappingType::kCubicInterpolated);
  const double base = span(*log_m);
  EXPECT_NEAR(span(*lin) / base, 1.0 / std::log(2.0), 0.01);
  EXPECT_NEAR(span(*quad) / base, 3.0 / (4.0 * std::log(2.0)), 0.01);
  EXPECT_NEAR(span(*cubic) / base, 7.0 / (10.0 * std::log(2.0)), 0.01);
}

TEST(MappingCompatibilityTest, DifferentTypesOrAlphasIncompatible) {
  auto a =
      std::move(IndexMapping::Create(MappingType::kLogarithmic, 0.01)).value();
  auto b =
      std::move(IndexMapping::Create(MappingType::kCubicInterpolated, 0.01))
          .value();
  auto c =
      std::move(IndexMapping::Create(MappingType::kLogarithmic, 0.02)).value();
  EXPECT_FALSE(a->IsCompatibleWith(*b));
  EXPECT_FALSE(a->IsCompatibleWith(*c));
  EXPECT_TRUE(a->IsCompatibleWith(*a));
}

TEST(MappingNamesTest, StableStrings) {
  EXPECT_STREQ(MappingTypeToString(MappingType::kLogarithmic), "log");
  EXPECT_STREQ(MappingTypeToString(MappingType::kLinearInterpolated),
               "linear");
  EXPECT_STREQ(MappingTypeToString(MappingType::kQuadraticInterpolated),
               "quadratic");
  EXPECT_STREQ(MappingTypeToString(MappingType::kCubicInterpolated), "cubic");
}

}  // namespace
}  // namespace dd
