#include "moments/maxent_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "moments/chebyshev.h"
#include "util/rng.h"

namespace dd {
namespace {

// Chebyshev moments of a sample on [-1, 1].
std::vector<double> SampleChebyshevMoments(const std::vector<double>& xs,
                                           size_t k) {
  std::vector<double> m(k + 1, 0.0);
  std::vector<double> t(k + 1);
  for (double x : xs) {
    ChebyshevValues(x, k, t.data());
    for (size_t j = 0; j <= k; ++j) m[j] += t[j];
  }
  for (double& v : m) v /= static_cast<double>(xs.size());
  return m;
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [2, 3] -> x = [0, 1].
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {2, 3};
  ASSERT_TRUE(CholeskySolve(a, b, 2));
  EXPECT_NEAR(b[0], 0.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(CholeskyTest, RandomSpdSystems) {
  Rng rng(95);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.NextBounded(12);
    // A = M M^T + I is SPD.
    std::vector<double> m(n * n);
    for (double& v : m) v = rng.NextDouble() * 2 - 1;
    std::vector<double> a(n * n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        for (size_t p = 0; p < n; ++p) a[i * n + j] += m[i * n + p] * m[j * n + p];
      }
      a[i * n + i] += 1.0;
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.NextDouble() * 4 - 2;
    std::vector<double> b(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
    }
    std::vector<double> a_copy = a;
    ASSERT_TRUE(CholeskySolve(a_copy, b, n));
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(b[i], x_true[i], 1e-8) << "n=" << n;
    }
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(CholeskySolve(a, b, 2));
}

TEST(MaxEntTest, UniformMomentsGiveUniformDensity) {
  // m = (1, 0, -1/3, 0, -1/15): Chebyshev moments of U(-1,1).
  std::vector<double> m = {1.0, 0.0, -1.0 / 3.0, 0.0, -1.0 / 15.0};
  auto r = SolveMaxEntropy(m);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Quantiles of U(-1,1): q-quantile = 2q - 1.
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(r.value().QuantileU(q), 2 * q - 1, 0.01) << q;
  }
}

TEST(MaxEntTest, RecoversTruncatedGaussianQuantiles) {
  Rng rng(96);
  std::vector<double> xs;
  while (xs.size() < 200000) {
    const double u1 = rng.NextDoubleOpenZero();
    const double u2 = rng.NextDouble();
    const double z =
        std::sqrt(-2 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double x = 0.2 + 0.3 * z;
    if (x > -1 && x < 1) xs.push_back(x);
  }
  std::sort(xs.begin(), xs.end());
  auto r = SolveMaxEntropy(SampleChebyshevMoments(xs, 10));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double actual =
        xs[static_cast<size_t>(q * (static_cast<double>(xs.size()) - 1))];
    EXPECT_NEAR(r.value().QuantileU(q), actual, 0.02) << q;
  }
}

TEST(MaxEntTest, RecoversBimodalDensity) {
  Rng rng(97);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) {
    const double center = (i % 2 == 0) ? -0.5 : 0.5;
    const double u1 = rng.NextDoubleOpenZero();
    const double u2 = rng.NextDouble();
    const double z =
        std::sqrt(-2 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double x = center + 0.12 * z;
    xs.push_back(std::clamp(x, -0.999, 0.999));
  }
  std::sort(xs.begin(), xs.end());
  auto r = SolveMaxEntropy(SampleChebyshevMoments(xs, 16));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The median sits between the modes; the quartiles near the modes.
  EXPECT_NEAR(r.value().QuantileU(0.25), -0.5, 0.06);
  EXPECT_NEAR(r.value().QuantileU(0.75), 0.5, 0.06);
}

TEST(MaxEntTest, CdfIsMonotoneNormalized) {
  std::vector<double> m = {1.0, 0.1, -0.3, 0.05, -0.1};
  auto r = SolveMaxEntropy(m);
  ASSERT_TRUE(r.ok());
  const auto& cdf = r.value().cdf();
  EXPECT_DOUBLE_EQ(cdf.front(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(MaxEntTest, QuantileUClampsArguments) {
  std::vector<double> m = {1.0, 0.0, -1.0 / 3.0};
  auto r = SolveMaxEntropy(m);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().QuantileU(-1.0), -1.0);
  EXPECT_DOUBLE_EQ(r.value().QuantileU(2.0), 1.0);
}

TEST(MaxEntTest, EmptyMomentsRejected) {
  EXPECT_FALSE(SolveMaxEntropy({}).ok());
}

}  // namespace
}  // namespace dd
