// Full-mergeability property suite (paper §1, Table 1): DDSketch merged in
// any partition, any order, any tree shape must answer every query exactly
// as a single sketch over the concatenated stream.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/ddsketch.h"
#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

DDSketch MakeSketch(int32_t max_buckets = 2048) {
  auto r = DDSketch::Create(0.01, max_buckets);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

void ExpectSameAnswers(const DDSketch& a, const DDSketch& b) {
  ASSERT_EQ(a.count(), b.count());
  EXPECT_EQ(a.zero_count(), b.zero_count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_NEAR(a.sum(), b.sum(), std::abs(b.sum()) * 1e-9 + 1e-9);
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(a.QuantileOrNaN(q), b.QuantileOrNaN(q)) << "q=" << q;
  }
}

class MergePartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(MergePartitionTest, AnyPartitionMatchesSingleSketch) {
  const int num_parts = GetParam();
  const auto data = GenerateDataset(DatasetId::kSpan, 60000, /*seed=*/7);
  DDSketch single = MakeSketch();
  for (double x : data) single.Add(x);

  std::vector<DDSketch> parts;
  for (int i = 0; i < num_parts; ++i) parts.push_back(MakeSketch());
  Rng rng(500 + static_cast<uint64_t>(num_parts));
  for (double x : data) {
    parts[rng.NextBounded(static_cast<uint64_t>(num_parts))].Add(x);
  }
  DDSketch merged = MakeSketch();
  for (const DDSketch& p : parts) ASSERT_TRUE(merged.MergeFrom(p).ok());
  ExpectSameAnswers(merged, single);
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, MergePartitionTest,
                         ::testing::Values(2, 3, 8, 32, 100));

TEST(MergeabilityTest, MergeOrderIrrelevant) {
  const auto data = GenerateDataset(DatasetId::kPareto, 30000, 8);
  std::vector<DDSketch> parts;
  for (int i = 0; i < 6; ++i) parts.push_back(MakeSketch());
  for (size_t i = 0; i < data.size(); ++i) parts[i % 6].Add(data[i]);

  // Left fold 0..5.
  DDSketch forward = MakeSketch();
  for (const auto& p : parts) ASSERT_TRUE(forward.MergeFrom(p).ok());
  // Right fold 5..0.
  DDSketch backward = MakeSketch();
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    ASSERT_TRUE(backward.MergeFrom(*it).ok());
  }
  // Balanced tree: (0+1) + (2+3) + (4+5).
  DDSketch t01 = parts[0], t23 = parts[2], t45 = parts[4];
  ASSERT_TRUE(t01.MergeFrom(parts[1]).ok());
  ASSERT_TRUE(t23.MergeFrom(parts[3]).ok());
  ASSERT_TRUE(t45.MergeFrom(parts[5]).ok());
  ASSERT_TRUE(t01.MergeFrom(t23).ok());
  ASSERT_TRUE(t01.MergeFrom(t45).ok());

  ExpectSameAnswers(forward, backward);
  ExpectSameAnswers(forward, t01);
}

TEST(MergeabilityTest, RepeatedPairwiseMergingDeepTree) {
  // 64 leaf sketches merged as a binary reduction tree (6 levels deep):
  // the failure mode of one-way-mergeable sketches, a no-op for DDSketch.
  const auto data = GenerateDataset(DatasetId::kWebLatency, 64000, 9);
  DDSketch single = MakeSketch();
  for (double x : data) single.Add(x);

  std::vector<DDSketch> level;
  for (int i = 0; i < 64; ++i) {
    level.push_back(MakeSketch());
    for (int j = 0; j < 1000; ++j) level.back().Add(data[i * 1000 + j]);
  }
  while (level.size() > 1) {
    std::vector<DDSketch> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      DDSketch m = level[i];
      ASSERT_TRUE(m.MergeFrom(level[i + 1]).ok());
      next.push_back(std::move(m));
    }
    level = std::move(next);
  }
  ExpectSameAnswers(level[0], single);
}

TEST(MergeabilityTest, MergePreservesAccuracyGuarantee) {
  // The merged sketch is alpha-accurate against the union's ground truth.
  const double alpha = 0.01;
  std::vector<double> all;
  DDSketch merged = MakeSketch();
  Rng rng(501);
  for (int worker = 0; worker < 10; ++worker) {
    DDSketch w = MakeSketch();
    // Each worker sees a differently-scaled workload.
    const double scale = std::pow(10.0, worker % 5);
    for (int i = 0; i < 5000; ++i) {
      const double x = scale * rng.NextDoubleOpenZero();
      w.Add(x);
      all.push_back(x);
    }
    ASSERT_TRUE(merged.MergeFrom(w).ok());
  }
  ExactQuantiles truth(all);
  for (double q = 0.0; q <= 1.0; q += 0.02) {
    EXPECT_LE(RelativeError(merged.QuantileOrNaN(q), truth.Quantile(q)),
              alpha * (1 + 1e-9))
        << q;
  }
}

TEST(MergeabilityTest, MergeWithEmptySketches) {
  DDSketch a = MakeSketch(), empty1 = MakeSketch(), empty2 = MakeSketch();
  a.Add(5.0);
  ASSERT_TRUE(a.MergeFrom(empty1).ok());
  EXPECT_EQ(a.count(), 1u);
  ASSERT_TRUE(empty2.MergeFrom(a).ok());
  EXPECT_EQ(empty2.count(), 1u);
  EXPECT_DOUBLE_EQ(empty2.QuantileOrNaN(0.5), 5.0);
  DDSketch e3 = MakeSketch(), e4 = MakeSketch();
  ASSERT_TRUE(e3.MergeFrom(e4).ok());
  EXPECT_TRUE(e3.empty());
}

TEST(MergeabilityTest, IncompatibleParametersRejected) {
  auto a = std::move(DDSketch::Create(0.01)).value();
  auto b = std::move(DDSketch::Create(0.02)).value();
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kIncompatible);

  DDSketchConfig cubic_cfg;
  cubic_cfg.mapping = MappingType::kCubicInterpolated;
  auto c = std::move(DDSketch::Create(cubic_cfg)).value();
  EXPECT_EQ(a.MergeFrom(c).code(), StatusCode::kIncompatible);
}

TEST(MergeabilityTest, CrossStoreTypeMergeWorks) {
  // Same mapping, different store strategies: still mergeable (the store
  // is an implementation detail, the bucket space is shared).
  DDSketchConfig dense_cfg, sparse_cfg;
  dense_cfg.store = StoreType::kUnboundedDense;
  sparse_cfg.store = StoreType::kSparse;
  sparse_cfg.max_num_buckets = 0;
  auto dense = std::move(DDSketch::Create(dense_cfg)).value();
  auto sparse = std::move(DDSketch::Create(sparse_cfg)).value();
  Rng rng(502);
  std::vector<double> all;
  for (int i = 0; i < 10000; ++i) {
    const double x = std::exp(rng.NextDouble() * 10);
    all.push_back(x);
    (i % 2 ? dense : sparse).Add(x);
  }
  ASSERT_TRUE(dense.MergeFrom(sparse).ok());
  ExactQuantiles truth(all);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(RelativeError(dense.QuantileOrNaN(q), truth.Quantile(q)),
              0.01 * (1 + 1e-9))
        << q;
  }
}

TEST(MergeabilityTest, CollapsingMergeMatchesSingleCollapsingSketch) {
  // Even when collapses happen, merge order must not matter.
  const auto data = GenerateDataset(DatasetId::kSpan, 60000, 10);
  DDSketch single = MakeSketch(/*max_buckets=*/128);
  for (double x : data) single.Add(x);
  std::vector<DDSketch> parts;
  for (int i = 0; i < 5; ++i) parts.push_back(MakeSketch(128));
  for (size_t i = 0; i < data.size(); ++i) parts[i % 5].Add(data[i]);
  DDSketch merged = MakeSketch(128);
  // Merge in reverse order for spice.
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    ASSERT_TRUE(merged.MergeFrom(*it).ok());
  }
  ExpectSameAnswers(merged, single);
}

TEST(MergeabilityTest, SelfMergeDoublesCounts) {
  DDSketch a = MakeSketch();
  for (int i = 1; i <= 100; ++i) a.Add(static_cast<double>(i));
  DDSketch b = a;
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.QuantileOrNaN(0.5), b.QuantileOrNaN(0.5));
}

TEST(MergeabilityTest, ThousandWayMerge) {
  // The paper's deployment scale: many transient containers each
  // contributing a small sketch.
  const auto data = GenerateDataset(DatasetId::kWebLatency, 100000, 11);
  DDSketch single = MakeSketch();
  DDSketch merged = MakeSketch();
  for (size_t chunk = 0; chunk < 1000; ++chunk) {
    DDSketch worker = MakeSketch();
    for (size_t i = chunk * 100; i < (chunk + 1) * 100; ++i) {
      worker.Add(data[i]);
      single.Add(data[i]);
    }
    ASSERT_TRUE(merged.MergeFrom(worker).ok());
  }
  ExpectSameAnswers(merged, single);
}

}  // namespace
}  // namespace dd
