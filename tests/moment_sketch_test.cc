#include "moments/moment_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

MomentSketch Make(int k = 20, bool compress = true) {
  auto r = MomentSketch::Create(k, compress);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(MomentSketchTest, CreateValidation) {
  EXPECT_FALSE(MomentSketch::Create(1).ok());
  EXPECT_FALSE(MomentSketch::Create(41).ok());
  EXPECT_TRUE(MomentSketch::Create(2).ok());
  EXPECT_TRUE(MomentSketch::Create(20).ok());
}

TEST(MomentSketchTest, EmptyAndDegenerate) {
  MomentSketch s = Make();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Quantile(0.5).ok());
  s.Add(7.0);
  auto r = s.Quantile(0.5);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 7.0, 1e-9);
}

TEST(MomentSketchTest, ConstantStream) {
  MomentSketch s = Make();
  for (int i = 0; i < 1000; ++i) s.Add(3.5);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_NEAR(s.QuantileOrNaN(q), 3.5, 1e-9) << q;
  }
}

TEST(MomentSketchTest, PowerSumsAccumulate) {
  MomentSketch s = Make(4, /*compress=*/false);
  s.Add(2.0);
  s.Add(3.0);
  const auto& sums = s.power_sums();
  EXPECT_DOUBLE_EQ(sums[0], 2.0);
  EXPECT_DOUBLE_EQ(sums[1], 5.0);
  EXPECT_DOUBLE_EQ(sums[2], 13.0);
  EXPECT_DOUBLE_EQ(sums[3], 35.0);
  EXPECT_DOUBLE_EQ(sums[4], 97.0);
}

TEST(MomentSketchTest, WeightedAddMatchesRepeated) {
  MomentSketch a = Make(8), b = Make(8);
  a.Add(2.5, 100);
  for (int i = 0; i < 100; ++i) b.Add(2.5);
  EXPECT_EQ(a.count(), b.count());
  for (size_t i = 0; i < a.power_sums().size(); ++i) {
    EXPECT_NEAR(a.power_sums()[i], b.power_sums()[i],
                1e-9 * std::abs(a.power_sums()[i]) + 1e-12);
  }
}

TEST(MomentSketchTest, UniformQuantiles) {
  MomentSketch s = Make(12, /*compress=*/false);
  Rng rng(111);
  std::vector<double> data;
  for (int i = 0; i < 200000; ++i) {
    data.push_back(rng.NextDouble() * 10);
    s.Add(data.back());
  }
  ExactQuantiles truth(data);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(s.QuantileOrNaN(q), truth.Quantile(q), 0.15) << q;
  }
}

TEST(MomentSketchTest, GaussianQuantiles) {
  MomentSketch s = Make(12, /*compress=*/false);
  Rng rng(112);
  std::vector<double> data;
  for (int i = 0; i < 200000; ++i) {
    const double u1 = rng.NextDoubleOpenZero();
    const double u2 = rng.NextDouble();
    data.push_back(50 + 10 * std::sqrt(-2 * std::log(u1)) *
                            std::cos(6.283185307179586 * u2));
    s.Add(data.back());
  }
  ExactQuantiles truth(data);
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_LE(RelativeError(s.QuantileOrNaN(q), truth.Quantile(q)), 0.03)
        << q;
  }
}

TEST(MomentSketchTest, ArcsinhCompressionHelpsHeavyTails) {
  // Pareto data: with compression the median is decent; without, the
  // estimate degrades badly. This is the "compression enabled" rationale
  // of Table 2.
  const auto data = GenerateDataset(DatasetId::kPareto, 200000);
  ExactQuantiles truth(data);
  MomentSketch with = Make(20, true), without = Make(20, false);
  for (double x : data) {
    with.Add(x);
    without.Add(x);
  }
  const double err_with =
      RelativeError(with.QuantileOrNaN(0.5), truth.Quantile(0.5));
  const double err_without =
      RelativeError(without.QuantileOrNaN(0.5), truth.Quantile(0.5));
  EXPECT_LT(err_with, 0.15);
  EXPECT_GT(err_without, err_with);
}

TEST(MomentSketchTest, MergeMatchesCombinedStream) {
  MomentSketch a = Make(), b = Make(), whole = Make();
  Rng rng(113);
  for (int i = 0; i < 100000; ++i) {
    const double x = std::exp(rng.NextDouble() * 4);
    (i % 2 ? a : b).Add(x);
    whole.Add(x);
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.count(), whole.count());
  for (size_t i = 0; i < a.power_sums().size(); ++i) {
    EXPECT_NEAR(a.power_sums()[i], whole.power_sums()[i],
                1e-9 * std::abs(whole.power_sums()[i]) + 1e-12);
  }
  // Full mergeability: quantiles agree to solver precision. The maxent
  // inversion is sensitive to last-ulp differences in the high power sums
  // (they accumulate in different orders), so the tolerance is loose.
  for (double q : {0.25, 0.5, 0.9}) {
    EXPECT_NEAR(a.QuantileOrNaN(q), whole.QuantileOrNaN(q),
                0.05 * whole.QuantileOrNaN(q) + 1e-9)
        << q;
  }
}

TEST(MomentSketchTest, MergeRejectsMismatched) {
  MomentSketch a = Make(20), b = Make(10);
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kIncompatible);
  MomentSketch c = Make(20, false);
  EXPECT_EQ(a.MergeFrom(c).code(), StatusCode::kIncompatible);
}

TEST(MomentSketchTest, SizeIndependentOfN) {
  MomentSketch s = Make();
  const size_t size0 = s.size_in_bytes();
  Rng rng(114);
  for (int i = 0; i < 100000; ++i) s.Add(rng.NextDouble());
  EXPECT_EQ(s.size_in_bytes(), size0);
  EXPECT_LT(size0, 512u);  // ~21 doubles + bookkeeping
}

TEST(MomentSketchTest, BatchQuantilesConsistent) {
  MomentSketch s = Make();
  Rng rng(115);
  for (int i = 0; i < 50000; ++i) s.Add(rng.NextDouble() * 100);
  const std::vector<double> qs = {0.1, 0.5, 0.9};
  auto batch = s.Quantiles(qs);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_NEAR(batch.value()[i], s.QuantileOrNaN(qs[i]), 1e-9);
  }
  EXPECT_FALSE(s.Quantiles(std::vector<double>{1.5}).ok());
}

TEST(MomentSketchTest, EstimatesClampedToObservedRange) {
  MomentSketch s = Make();
  Rng rng(116);
  for (int i = 0; i < 10000; ++i) s.Add(1.0 + rng.NextDouble());
  for (double q : {0.0, 0.01, 0.99, 1.0}) {
    const double est = s.QuantileOrNaN(q);
    EXPECT_GE(est, s.min() - 1e-9);
    EXPECT_LE(est, s.max() + 1e-9);
  }
}

TEST(MomentSketchTest, NonFiniteInputsIgnored) {
  MomentSketch s = Make();
  s.Add(std::nan(""));
  s.Add(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(s.empty());
  s.Add(1.0);
  EXPECT_EQ(s.count(), 1u);
}

}  // namespace
}  // namespace dd
