// Multi-tenant flood & starvation battery for the per-tag admission
// layer (protocol v7): a live sketchd serving stack under deliberate
// single-tag overload. The invariants:
//
//   1. a flooding tag exhausts *its* allowance and gets BUSY — an
//      honest tag staying inside its guaranteed floor loses nothing,
//      sees zero refusals, and every one of its acks survives a reopen;
//   2. refused bytes are refunded in full: once the flood stops,
//      staged_bytes drains back to exactly 0, per tag and in total;
//   3. BUSY responses carry the refusing tag's retry_after_ms hint;
//   4. the throttle controller shrinks a misbehaving tag's borrowable
//      share when its own ack p99 breaches the target, and decays the
//      share back once the tag behaves;
//   5. SET_TAG itself: invalid names are refused without killing the
//      connection, untagged peers share the built-in "default" ledger.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "server/admission.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"
#include "timeseries/durable_store.h"
#include "util/status.h"

namespace dd {
namespace {

namespace fs = std::filesystem;

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

class MultiTenantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("dd_tenant_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  static std::unique_ptr<SketchServer> MustStart(
      const std::string& dir, const SketchServerOptions& options) {
    auto server = SketchServer::Start(dir, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  static SketchClient MustConnect(uint16_t port, const std::string& tag = "") {
    auto client = SketchClient::Connect("127.0.0.1", port);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    if (!tag.empty()) {
      const Status s = client.value().SetTag(tag);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    return std::move(client).value();
  }

  /// The named tag's STATS row; fails the test when absent.
  static TagStatsRow MustTagRow(SketchClient& client,
                                const std::string& tag) {
    auto stats = client.Stats();
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.ok()) {
      for (const TagStatsRow& row : stats.value().tags) {
        if (row.tag == tag) return row;
      }
    }
    ADD_FAILURE() << "no STATS row for tag " << tag;
    return {};
  }

  fs::path root_;
};

TEST_F(MultiTenantTest, SetTagRoutesTrafficAndDefaultCatchesUntagged) {
  SketchServerOptions options;
  // "gold" is a configured tenant (floor guaranteed); "walkin" shows up
  // only via SET_TAG (no floor, borrows from the pool).
  options.tag_weights = {{"gold", 2}};
  auto server = MustStart(Dir("settag"), options);

  SketchClient tagged = MustConnect(server->port(), "gold");
  ASSERT_TRUE(tagged.IngestValue("svc.gold", 10, 1.0).ok());
  SketchClient walkin = MustConnect(server->port(), "walkin");
  ASSERT_TRUE(walkin.IngestValue("svc.walkin", 10, 3.0).ok());
  SketchClient untagged = MustConnect(server->port());
  ASSERT_TRUE(untagged.IngestValue("svc.plain", 10, 2.0).ok());

  // Every tag shows up as its own STATS row; ack latency lands on the
  // row the connection declared, untagged traffic on "default".
  const TagStatsRow gold = MustTagRow(untagged, "gold");
  EXPECT_GE(gold.count, 1u);
  EXPECT_GT(gold.p50_us, 0.0);
  EXPECT_EQ(gold.busy_rejections, 0u);
  EXPECT_EQ(gold.throttle_permille, 1000u);
  const TagStatsRow fallback = MustTagRow(untagged, "default");
  EXPECT_GE(fallback.count, 1u);
  // Budgets are live: a configured tenant holds a floor plus the
  // borrowable remainder, and with nothing in flight nothing stays
  // staged. A dynamically registered tag has no floor — pool only —
  // so it can never dilute gold's guarantee.
  EXPECT_GT(gold.floor_bytes, 0u);
  EXPECT_GT(gold.budget_bytes, gold.floor_bytes);
  EXPECT_EQ(gold.staged_bytes, 0u);
  const TagStatsRow walkin_row = MustTagRow(untagged, "walkin");
  EXPECT_GE(walkin_row.count, 1u);
  EXPECT_EQ(walkin_row.floor_bytes, 0u);
  EXPECT_GT(walkin_row.budget_bytes, 0u);
  EXPECT_EQ(walkin_row.staged_bytes, 0u);
}

TEST_F(MultiTenantTest, InvalidTagIsRefusedWithoutKillingTheConnection) {
  SketchServerOptions options;
  auto server = MustStart(Dir("badtag"), options);
  SketchClient client = MustConnect(server->port());

  EXPECT_EQ(client.SetTag("has space").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.SetTag("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.SetTag(std::string(65, 'x')).code(),
            StatusCode::kInvalidArgument);
  // The connection survives the refusals, still on the default tag...
  ASSERT_TRUE(client.IngestValue("svc.alive", 1, 3.0).ok());
  // ...and a valid retag still works afterwards.
  EXPECT_TRUE(client.SetTag("recovered_1.tag-x").ok());
  ASSERT_TRUE(client.IngestValue("svc.alive", 2, 4.0).ok());
  EXPECT_GE(MustTagRow(client, "recovered_1.tag-x").count, 1u);
}

TEST_F(MultiTenantTest, TagTableFullIsRefusedDistinctlyAndBounded) {
  SketchServerOptions options;
  auto server = MustStart(Dir("tagcap"), options);

  // An unauthenticated spray of unique tag names: past the cap every
  // SET_TAG gets the distinct refusal — not BUSY (retrying cannot
  // help), not a dead connection — and server state stops growing.
  SketchClient sprayer = MustConnect(server->port());
  size_t granted = 0, refused = 0;
  for (size_t i = 0; i < TagAdmissionLedger::kMaxTags + 8; ++i) {
    const Status s = sprayer.SetTag("junk" + std::to_string(i));
    if (s.ok()) {
      ++granted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
      ++refused;
    }
  }
  EXPECT_GT(granted, 0u);
  EXPECT_GE(refused, 8u);
  EXPECT_EQ(server->ledger().num_tags(), TagAdmissionLedger::kMaxTags);

  // A fresh connection refused a new tag keeps its current one: its
  // traffic is charged to "default", and the junk name it asked for
  // never becomes a STATS row.
  SketchClient late = MustConnect(server->port());
  EXPECT_EQ(late.SetTag("one-too-many").code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(late.IngestValue("svc.late", 10, 1.0).ok());
  EXPECT_GE(MustTagRow(late, "default").count, 1u);
  auto stats = late.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LE(stats.value().tags.size(), TagAdmissionLedger::kMaxTags);
  for (const TagStatsRow& row : stats.value().tags) {
    EXPECT_NE(row.tag, "one-too-many");
  }
  // Tags that made it in before the cap still resolve idempotently.
  EXPECT_TRUE(late.SetTag("junk0").ok());
}

TEST_F(MultiTenantTest, BusyResponseCarriesRetryAfterHint) {
  SketchServerOptions options;
  // Budget of two one-byte-series records (65 staged bytes each), and a
  // long partial-batch hold so all three pipelined requests are judged
  // against the same staged ledger.
  options.staged_bytes_budget = 160;
  options.commit_interval_us = 100000;
  auto server = MustStart(Dir("hint"), options);

  auto fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  FramedConn conn(fd.value());
  ASSERT_TRUE(conn.SendHello().ok());
  ASSERT_TRUE(conn.ExpectHello().ok());

  // One send for all three frames: they arrive buffered together, so
  // the event loop stages them as one run against one ledger state.
  Request request;
  request.op = Request::Op::kIngest;
  request.series = "t";
  request.value = 1.0;
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    request.timestamp = i;
    wire += EncodeRequest(request);
  }
  ASSERT_TRUE(conn.WriteFrame(wire).ok());
  int busy = 0;
  for (int i = 0; i < 3; ++i) {
    auto body = conn.ReadFrame();
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    auto response = DecodeResponse(body.value());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response.value().code == StatusCode::kBusy) {
      ++busy;
      // A fresh ledger has no refill observations yet, so the hint is
      // the pinned default — nonzero by contract.
      EXPECT_EQ(response.value().retry_after_ms,
                TagAdmissionLedger::kDefaultRetryMs);
    } else {
      EXPECT_EQ(response.value().code, StatusCode::kOk);
      EXPECT_EQ(response.value().retry_after_ms, 0u);
    }
  }
  EXPECT_EQ(busy, 1) << "budget admits exactly two staged records";
  ::close(fd.value());
}

// The headline: a single-tag flood pushing far past (≥4×) its
// borrowable allowance cannot starve an honest tag working inside its
// guaranteed floor.
TEST_F(MultiTenantTest, FloodCannotStarveHonestTag) {
  SketchServerOptions options;
  // Small budget + slowed committers so the flood's pipelined windows
  // pile up against admission. Three tags (default, flood, honest)
  // split a 2048-byte reserve: ~682-byte floors, ~2050-byte pool. A
  // flood window of 512 pipelined records (~35 KB staged cost)
  // oversubscribes the flood's floor+pool allowance more than tenfold.
  options.staged_bytes_budget = 4096;
  options.commit_interval_us = 2000;
  options.tag_weights = {{"flood", 1}, {"honest", 1}};
  auto server = MustStart(Dir("flood"), options);

  std::atomic<bool> flood_hard_error{false};
  std::vector<std::thread> flood_threads;
  for (int t = 0; t < 2; ++t) {
    flood_threads.emplace_back([&, t] {
      SketchClient client = MustConnect(server->port(), "flood");
      client.set_busy_retries(4);
      std::vector<std::pair<int64_t, double>> points;
      for (int i = 0; i < 500; ++i) {
        points.emplace_back(t * 1000 + i, 1.0 + i);
      }
      // Retry exhaustion (Busy) is an expected outcome of flooding;
      // anything else is a real failure.
      const Status status = client.IngestValues("svc.flood", points);
      if (!status.ok() && status.code() != StatusCode::kBusy) {
        flood_hard_error.store(true);
      }
    });
  }

  // The honest tenant works sequentially — one record in flight, well
  // inside its floor — with retries DISABLED: any BUSY fails the test.
  int honest_acked = 0;
  {
    SketchClient honest = MustConnect(server->port(), "honest");
    honest.set_busy_retries(0);
    for (int i = 0; i < 200; ++i) {
      const Status status = honest.IngestValue("svc.honest", i, 2.0 + i);
      ASSERT_TRUE(status.ok())
          << "honest tag starved at record " << i << ": "
          << status.ToString();
      ++honest_acked;
    }
  }
  for (std::thread& t : flood_threads) t.join();
  EXPECT_FALSE(flood_hard_error.load());

  // The flood was refused (and only the flood); refunds must drain the
  // staged ledger back to exactly zero once the dust settles.
  SketchClient probe = MustConnect(server->port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  uint64_t staged = ~0ull;
  while (std::chrono::steady_clock::now() < deadline) {
    auto stats = probe.Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    staged = stats.value().staged_bytes;
    if (staged == 0) break;
    SleepMs(20);
  }
  EXPECT_EQ(staged, 0u) << "refused/committed bytes were not fully refunded";
  const TagStatsRow flood_row = MustTagRow(probe, "flood");
  const TagStatsRow honest_row = MustTagRow(probe, "honest");
  EXPECT_GT(flood_row.busy_rejections, 0u) << "flood never tripped admission";
  EXPECT_EQ(honest_row.busy_rejections, 0u);
  EXPECT_EQ(flood_row.staged_bytes, 0u);
  EXPECT_EQ(honest_row.staged_bytes, 0u);
  EXPECT_EQ(honest_row.count, static_cast<uint64_t>(honest_acked));
  server->Stop();

  // Zero lost acks for the honest tag: every acked record survives a
  // direct reopen of the store.
  auto reopened = DurableSketchStore::Open(Dir("flood"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(
      std::move(reopened.value().QueryRange("svc.honest", 0, 1000)).value()
          .count(),
      static_cast<double>(honest_acked));
}

TEST_F(MultiTenantTest, ThrottleShrinksBreachingTagAndRecovers) {
  SketchServerOptions options;
  // A 1 µs p99 target no real commit can meet: every tick with enough
  // samples breaches, so the noisy tag's borrow share must shrink.
  options.tag_p99_target_us = 1;
  options.tag_throttle_interval_ms = 50;
  options.tag_weights = {{"noisy", 2}};
  auto server = MustStart(Dir("throttle"), options);

  SketchClient noisy = MustConnect(server->port(), "noisy");
  SketchClient probe = MustConnect(server->port());

  // Keep breaching until the controller reacts (each tick needs ≥32
  // window samples; pipelined bursts deliver them quickly).
  uint64_t throttled_permille = 1000;
  const auto breach_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  int64_t ts = 0;
  while (std::chrono::steady_clock::now() < breach_deadline) {
    std::vector<std::pair<int64_t, double>> burst;
    for (int i = 0; i < 64; ++i) burst.emplace_back(ts++, 1.0);
    ASSERT_TRUE(noisy.IngestValues("svc.noisy", burst).ok());
    throttled_permille = MustTagRow(probe, "noisy").throttle_permille;
    if (throttled_permille < 1000) break;
  }
  EXPECT_LT(throttled_permille, 1000u) << "p99 breach never throttled";
  // The clamp: borrowing power never reaches zero (the floor is
  // untouched by design, and a sliver of pool share always remains).
  for (const TagLedgerEntry& entry : server->ledger().Snapshot()) {
    if (entry.tag == "noisy") {
      EXPECT_GE(entry.borrow_share, TagAdmissionLedger::kMinBorrowShare);
    }
  }

  // Recovery: once the tag goes quiet, idle ticks decay the share back
  // to full borrowing power.
  uint64_t recovered_permille = throttled_permille;
  const auto recover_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < recover_deadline) {
    recovered_permille = MustTagRow(probe, "noisy").throttle_permille;
    if (recovered_permille == 1000) break;
    SleepMs(25);
  }
  EXPECT_EQ(recovered_permille, 1000u) << "throttle never decayed back";

  // The tag's own sketch saw the traffic the controller judged by.
  const TagStatsRow row = MustTagRow(probe, "noisy");
  EXPECT_GE(row.count, 32u);
  EXPECT_GT(row.p99_us, 0.0);
  EXPECT_GE(row.p999_us, row.p99_us);
}

}  // namespace
}  // namespace dd
