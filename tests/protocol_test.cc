// Unit tests for the sketchd wire protocol codec (server/protocol.h):
// round trips for every op, framing behavior (incomplete vs corrupt),
// and strict rejection of malformed bodies — the same discipline the
// on-disk formats get from fuzz_differential_test.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ddsketch.h"
#include "util/crc32.h"

namespace dd {
namespace {

Request RoundTripRequest(const Request& request) {
  const std::string frame = EncodeRequest(request);
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  EXPECT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(frame_size, frame.size());
  auto decoded = DecodeRequest(body.value());
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return std::move(decoded).value();
}

Response RoundTripResponse(const Response& response) {
  const std::string frame = EncodeResponse(response);
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  EXPECT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(frame_size, frame.size());
  auto decoded = DecodeResponse(body.value());
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return std::move(decoded).value();
}

TEST(ProtocolTest, HelloRoundTrip) {
  const std::string hello = EncodeHello();
  ASSERT_EQ(hello.size(), kHelloBytes);
  EXPECT_TRUE(CheckHello(hello).ok());
}

TEST(ProtocolTest, HelloRejectsBadMagicAndVersion) {
  std::string bad_magic = EncodeHello();
  bad_magic[0] = 'X';
  EXPECT_EQ(CheckHello(bad_magic).code(), StatusCode::kCorruption);

  std::string bad_version = EncodeHello();
  bad_version[4] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_EQ(CheckHello(bad_version).code(), StatusCode::kIncompatible);

  EXPECT_EQ(CheckHello("DDS").code(), StatusCode::kCorruption);

  // A v2 peer (pre-BUSY) must be refused: it cannot interpret the
  // admission-control status code or the extended STATS payload.
  std::string v2 = EncodeHello();
  v2[4] = '\x02';
  EXPECT_EQ(CheckHello(v2).code(), StatusCode::kIncompatible);

  // A v3 peer (pre-latency-rows) must be refused too: it would stop
  // parsing the STATS payload at staged_bytes and misread the latency
  // rows as shard rows.
  std::string v3 = EncodeHello();
  v3[4] = '\x03';
  EXPECT_EQ(CheckHello(v3).code(), StatusCode::kIncompatible);

  // A v4 peer (pre-replication) must be refused: it has no FENCED
  // status code, no SUBSCRIBE/PROMOTE ops, and would stop parsing the
  // STATS payload before the replication fields.
  std::string v4 = EncodeHello();
  v4[4] = '\x04';
  EXPECT_EQ(CheckHello(v4).code(), StatusCode::kIncompatible);

  // A v5 peer (pre-rollup) must be refused: it has no COMPACT op, no
  // per-level STATS rows, and no chunked-snapshot repl frames.
  std::string v5 = EncodeHello();
  v5[4] = '\x05';
  EXPECT_EQ(CheckHello(v5).code(), StatusCode::kIncompatible);

  // A v6 peer (pre-admission-tags) must be refused: it has no SET_TAG
  // op, would misread the per-tag STATS rows as trailing garbage, and
  // cannot parse the retry_after_ms payload a BUSY refusal now carries.
  std::string v6 = EncodeHello();
  v6[4] = '\x06';
  EXPECT_EQ(CheckHello(v6).code(), StatusCode::kIncompatible);
}

TEST(ProtocolTest, IngestRequestRoundTrip) {
  Request request;
  request.op = Request::Op::kIngest;
  request.series = "api.latency";
  request.timestamp = -12345;
  request.value = 3.25;
  const Request decoded = RoundTripRequest(request);
  EXPECT_EQ(decoded.op, Request::Op::kIngest);
  EXPECT_EQ(decoded.series, "api.latency");
  EXPECT_EQ(decoded.timestamp, -12345);
  EXPECT_EQ(decoded.value, 3.25);
}

TEST(ProtocolTest, MergeRequestRoundTrip) {
  auto sketch = std::move(DDSketch::Create(0.01, 2048)).value();
  sketch.Add(1.0);
  sketch.Add(42.0);
  Request request;
  request.op = Request::Op::kMerge;
  request.series = "db.latency";
  request.timestamp = 1000;
  request.payload = sketch.Serialize();
  const Request decoded = RoundTripRequest(request);
  EXPECT_EQ(decoded.op, Request::Op::kMerge);
  EXPECT_EQ(decoded.payload, request.payload);
  // The carried payload is still a decodable sketch.
  auto carried = DDSketch::Deserialize(decoded.payload);
  ASSERT_TRUE(carried.ok());
  EXPECT_EQ(carried.value().count(), 2u);
}

TEST(ProtocolTest, QueryRequestRoundTrip) {
  Request request;
  request.op = Request::Op::kQuery;
  request.series = "svc";
  request.start = -100;
  request.end = 900;
  request.quantiles = {0.5, 0.95, 0.999};
  const Request decoded = RoundTripRequest(request);
  EXPECT_EQ(decoded.start, -100);
  EXPECT_EQ(decoded.end, 900);
  EXPECT_EQ(decoded.quantiles, request.quantiles);
}

TEST(ProtocolTest, BodylessRequestsRoundTrip) {
  for (Request::Op op : {Request::Op::kCheckpoint, Request::Op::kStats,
                         Request::Op::kPromote}) {
    Request request;
    request.op = op;
    EXPECT_EQ(RoundTripRequest(request).op, op);
  }
}

TEST(ProtocolTest, CompactRequestRoundTrip) {
  // v6: COMPACT carries the caller's clock. Zigzag-encoded, so a
  // negative "now" (clock far behind the data) survives the wire.
  Request request;
  request.op = Request::Op::kCompact;
  request.compact_now = 1700000000;
  const Request decoded = RoundTripRequest(request);
  EXPECT_EQ(decoded.op, Request::Op::kCompact);
  EXPECT_EQ(decoded.compact_now, 1700000000);

  Request negative;
  negative.op = Request::Op::kCompact;
  negative.compact_now = -86400;
  EXPECT_EQ(RoundTripRequest(negative).compact_now, -86400);
}

TEST(ProtocolTest, SetTagRequestRoundTrip) {
  // v7: a connection declares its admission tag once; every later
  // ingest/merge is charged to that tag's ledger.
  Request request;
  request.op = Request::Op::kSetTag;
  request.tag = "team-a.prod_42";
  const Request decoded = RoundTripRequest(request);
  EXPECT_EQ(decoded.op, Request::Op::kSetTag);
  EXPECT_EQ(decoded.tag, "team-a.prod_42");

  // The wire carries any length-prefixed string — name validation is
  // the server's job (it refuses with INVALID_ARGUMENT, not corruption).
  Request empty;
  empty.op = Request::Op::kSetTag;
  EXPECT_EQ(RoundTripRequest(empty).tag, "");
}

TEST(ProtocolTest, SubscribeRequestRoundTrip) {
  // v5: a follower's handshake carries its fencing token and one resume
  // position per shard it already holds.
  Request request;
  request.op = Request::Op::kSubscribe;
  request.repl_token = 7;
  request.positions = {{2, 13}, {2, 4096}, {3, 13}};
  const Request decoded = RoundTripRequest(request);
  EXPECT_EQ(decoded.op, Request::Op::kSubscribe);
  EXPECT_EQ(decoded.repl_token, 7u);
  EXPECT_EQ(decoded.positions, request.positions);

  // A fresh follower has no positions at all.
  Request fresh;
  fresh.op = Request::Op::kSubscribe;
  const Request decoded_fresh = RoundTripRequest(fresh);
  EXPECT_EQ(decoded_fresh.repl_token, 0u);
  EXPECT_TRUE(decoded_fresh.positions.empty());
}

TEST(ProtocolTest, OkResponsesRoundTripPerOp) {
  {
    Response r;
    r.op = Request::Op::kIngest;
    r.wal_offset = 12345;
    EXPECT_EQ(RoundTripResponse(r).wal_offset, 12345u);
  }
  {
    Response r;
    r.op = Request::Op::kQuery;
    r.values = {1.5, 2.5};
    EXPECT_EQ(RoundTripResponse(r).values, r.values);
  }
  {
    Response r;
    r.op = Request::Op::kCheckpoint;
    r.epoch = 7;
    EXPECT_EQ(RoundTripResponse(r).epoch, 7u);
  }
  {
    // v6: COMPACT reports how many interval sketches folded plus the
    // epoch after the checkpoint it triggered.
    Response r;
    r.op = Request::Op::kCompact;
    r.compacted = 354;
    r.epoch = 9;
    const Response decoded = RoundTripResponse(r);
    EXPECT_EQ(decoded.compacted, 354u);
    EXPECT_EQ(decoded.epoch, 9u);
  }
  {
    Response r;
    r.op = Request::Op::kStats;
    r.stats.num_series = 3;
    r.stats.num_intervals = 17;
    r.stats.size_in_bytes = 4096;
    r.stats.wal_offset = 999;
    r.stats.epoch = 2;
    r.stats.batch_commits = 41;
    r.stats.background_checkpoints = 6;
    r.stats.connections_open = 12;
    r.stats.connections_accepted = 120;
    r.stats.connections_shed = 5;
    r.stats.busy_rejections = 33;
    r.stats.staged_bytes = 1 << 20;
    // v4: populate a few of the per-op latency rows; the rest stay
    // zero (an op the server has never acked encodes count=0).
    {
      OpLatencyStats& ingest =
          r.stats.op_latencies[static_cast<size_t>(LatencyOp::kIngest)];
      ingest.count = 100000;
      ingest.p50_us = 812.5;
      ingest.p90_us = 1900.25;
      ingest.p99_us = 4225.0;
      ingest.p999_us = 9800.125;
      ingest.max_us = 12000.5;
      OpLatencyStats& busy =
          r.stats.op_latencies[static_cast<size_t>(LatencyOp::kBusy)];
      busy.count = 17;
      busy.p50_us = 2.5;
      busy.p90_us = 4.0;
      busy.p99_us = 6.25;
      busy.p999_us = 6.25;
      busy.max_us = 6.25;
    }
    for (uint64_t k = 0; k < 3; ++k) {
      ShardStats shard;
      shard.shard = k;
      shard.num_series = k + 1;
      shard.wal_bytes = 100 * (k + 1);
      shard.epoch = 2 + k;
      shard.batch_commits = 10 + k;
      shard.background_checkpoints = k;
      r.stats.shards.push_back(shard);
    }
    const Response decoded = RoundTripResponse(r);
    EXPECT_EQ(decoded.stats.num_intervals, 17u);
    EXPECT_EQ(decoded.stats.batch_commits, 41u);
    EXPECT_EQ(decoded.stats.background_checkpoints, 6u);
    EXPECT_EQ(decoded.stats.connections_open, 12u);
    EXPECT_EQ(decoded.stats.connections_accepted, 120u);
    EXPECT_EQ(decoded.stats.connections_shed, 5u);
    EXPECT_EQ(decoded.stats.busy_rejections, 33u);
    EXPECT_EQ(decoded.stats.staged_bytes, static_cast<uint64_t>(1 << 20));
    const OpLatencyStats& ingest =
        decoded.stats.op_latencies[static_cast<size_t>(LatencyOp::kIngest)];
    EXPECT_EQ(ingest.count, 100000u);
    EXPECT_EQ(ingest.p50_us, 812.5);
    EXPECT_EQ(ingest.p90_us, 1900.25);
    EXPECT_EQ(ingest.p99_us, 4225.0);
    EXPECT_EQ(ingest.p999_us, 9800.125);
    EXPECT_EQ(ingest.max_us, 12000.5);
    const OpLatencyStats& busy =
        decoded.stats.op_latencies[static_cast<size_t>(LatencyOp::kBusy)];
    EXPECT_EQ(busy.count, 17u);
    EXPECT_EQ(busy.p99_us, 6.25);
    const OpLatencyStats& merge =
        decoded.stats.op_latencies[static_cast<size_t>(LatencyOp::kMerge)];
    EXPECT_EQ(merge.count, 0u);
    EXPECT_EQ(merge.max_us, 0.0);
    ASSERT_EQ(decoded.stats.shards.size(), 3u);
    EXPECT_EQ(decoded.stats.shards[2].shard, 2u);
    EXPECT_EQ(decoded.stats.shards[2].wal_bytes, 300u);
    EXPECT_EQ(decoded.stats.shards[2].epoch, 4u);
    EXPECT_EQ(decoded.stats.shards[1].background_checkpoints, 1u);
  }
}

TEST(ProtocolTest, StatsV5ReplicationFieldsRoundTrip) {
  Response r;
  r.op = Request::Op::kStats;
  r.stats.role = 1;
  r.stats.fence_token = 42;
  r.stats.fenced = 1;
  r.stats.repl_subscribers = 3;
  r.stats.repl_shipped_bytes = 1 << 22;
  r.stats.repl_applied_bytes = 1 << 21;
  r.stats.repl_connected = 1;
  r.stats.repl_heartbeat_age_ms = 137;
  const Response decoded = RoundTripResponse(r);
  EXPECT_EQ(decoded.stats.role, 1u);
  EXPECT_EQ(decoded.stats.fence_token, 42u);
  EXPECT_EQ(decoded.stats.fenced, 1u);
  EXPECT_EQ(decoded.stats.repl_subscribers, 3u);
  EXPECT_EQ(decoded.stats.repl_shipped_bytes, static_cast<uint64_t>(1 << 22));
  EXPECT_EQ(decoded.stats.repl_applied_bytes, static_cast<uint64_t>(1 << 21));
  EXPECT_EQ(decoded.stats.repl_connected, 1u);
  EXPECT_EQ(decoded.stats.repl_heartbeat_age_ms, 137u);
}

TEST(ProtocolTest, StatsV6LevelRowsRoundTrip) {
  // v6: STATS appends one row per rollup-ladder level (finest first),
  // after the v5 replication fields.
  Response r;
  r.op = Request::Op::kStats;
  r.stats.repl_shipped_bytes = 512;  // v5 fields still in front
  for (uint64_t i = 0; i < 3; ++i) {
    LevelStatsRow row;
    row.interval_seconds = 10 * (i + 1);
    row.retention_seconds = i == 2 ? 0 : 3600 * (i + 1);
    row.num_intervals = 100 - 30 * i;
    row.rollup_merges = 7 * i;
    row.retained_bytes = 1 << (12 + i);
    r.stats.levels.push_back(row);
  }
  const Response decoded = RoundTripResponse(r);
  EXPECT_EQ(decoded.stats.repl_shipped_bytes, 512u);
  ASSERT_EQ(decoded.stats.levels.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.stats.levels[i].interval_seconds,
              r.stats.levels[i].interval_seconds);
    EXPECT_EQ(decoded.stats.levels[i].retention_seconds,
              r.stats.levels[i].retention_seconds);
    EXPECT_EQ(decoded.stats.levels[i].num_intervals,
              r.stats.levels[i].num_intervals);
    EXPECT_EQ(decoded.stats.levels[i].rollup_merges,
              r.stats.levels[i].rollup_merges);
    EXPECT_EQ(decoded.stats.levels[i].retained_bytes,
              r.stats.levels[i].retained_bytes);
  }

  // A server with no durable store reports zero levels; the row count
  // is data-driven, not pinned like the latency rows.
  Response empty;
  empty.op = Request::Op::kStats;
  EXPECT_TRUE(RoundTripResponse(empty).stats.levels.empty());
}

TEST(ProtocolTest, StatsV7TagRowsRoundTrip) {
  // v7: STATS appends one row per admission tag, after the v6 level
  // rows — budgets, live staged bytes, refusals, the throttle share,
  // and the tag's own ack-latency percentiles (fixed doubles).
  Response r;
  r.op = Request::Op::kStats;
  r.stats.staged_bytes = 4096;  // earlier fields still in front
  {
    TagStatsRow row;
    row.tag = "default";
    row.floor_bytes = 1 << 20;
    row.budget_bytes = 1 << 22;
    row.count = 12345;
    row.p50_us = 81.5;
    row.p99_us = 950.25;
    row.p999_us = 4096.0;
    r.stats.tags.push_back(row);
  }
  {
    TagStatsRow row;
    row.tag = "team-b";
    row.budget_bytes = 1 << 21;
    row.staged_bytes = 777;
    row.busy_rejections = 42;
    row.throttle_permille = 125;  // mid-throttle
    r.stats.tags.push_back(row);
  }
  const Response decoded = RoundTripResponse(r);
  EXPECT_EQ(decoded.stats.staged_bytes, 4096u);
  ASSERT_EQ(decoded.stats.tags.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded.stats.tags[i].tag, r.stats.tags[i].tag);
    EXPECT_EQ(decoded.stats.tags[i].floor_bytes, r.stats.tags[i].floor_bytes);
    EXPECT_EQ(decoded.stats.tags[i].budget_bytes,
              r.stats.tags[i].budget_bytes);
    EXPECT_EQ(decoded.stats.tags[i].staged_bytes,
              r.stats.tags[i].staged_bytes);
    EXPECT_EQ(decoded.stats.tags[i].busy_rejections,
              r.stats.tags[i].busy_rejections);
    EXPECT_EQ(decoded.stats.tags[i].throttle_permille,
              r.stats.tags[i].throttle_permille);
    EXPECT_EQ(decoded.stats.tags[i].count, r.stats.tags[i].count);
    EXPECT_EQ(decoded.stats.tags[i].p50_us, r.stats.tags[i].p50_us);
    EXPECT_EQ(decoded.stats.tags[i].p99_us, r.stats.tags[i].p99_us);
    EXPECT_EQ(decoded.stats.tags[i].p999_us, r.stats.tags[i].p999_us);
  }

  // No tags (a follower with admission idle) is a valid payload.
  Response empty;
  empty.op = Request::Op::kStats;
  EXPECT_TRUE(RoundTripResponse(empty).stats.tags.empty());
}

TEST(ProtocolTest, SubscribeAndPromoteResponsesRoundTrip) {
  {
    Response r;
    r.op = Request::Op::kSubscribe;
    r.repl_token = 9;
    r.repl_shards = 4;
    const Response decoded = RoundTripResponse(r);
    EXPECT_EQ(decoded.repl_token, 9u);
    EXPECT_EQ(decoded.repl_shards, 4u);
  }
  {
    Response r;
    r.op = Request::Op::kPromote;
    r.repl_token = 10;
    const Response decoded = RoundTripResponse(r);
    EXPECT_EQ(decoded.repl_token, 10u);
  }
}

TEST(ProtocolTest, FencedResponseRoundTrip) {
  // v5: a fenced primary (or a follower asked to write) refuses with
  // FENCED. Like BUSY, no payload follows the message — the record
  // never touched the WAL.
  Response r;
  r.op = Request::Op::kIngest;
  r.code = StatusCode::kFenced;
  r.message = "writer fenced: a newer primary holds the fencing token";
  const Response decoded = RoundTripResponse(r);
  EXPECT_EQ(decoded.code, StatusCode::kFenced);
  EXPECT_EQ(decoded.wal_offset, 0u);
  const Status status = ResponseStatus(decoded);
  EXPECT_EQ(status.code(), StatusCode::kFenced);
  EXPECT_EQ(status.message(),
            "writer fenced: a newer primary holds the fencing token");

  // A FENCED body with trailing payload bytes is corrupt, not lenient.
  const std::string frame = EncodeResponse(r);
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(DecodeResponse(std::string(body.value()) + "\x01").status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, ReplFrameRoundTripsPerTag) {
  {
    ReplFrame f;
    f.tag = ReplFrame::Tag::kSnapshot;
    f.shard = 2;
    f.epoch = 5;
    f.payload = std::string("snapshot image bytes\x00\x01\x02", 23);
    const std::string frame = EncodeReplFrame(f);
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    auto decoded = DecodeReplFrame(body.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().tag, ReplFrame::Tag::kSnapshot);
    EXPECT_EQ(decoded.value().shard, 2u);
    EXPECT_EQ(decoded.value().epoch, 5u);
    EXPECT_EQ(decoded.value().payload, f.payload);
  }
  {
    ReplFrame f;
    f.tag = ReplFrame::Tag::kSegment;
    f.shard = 1;
    f.epoch = 3;
    f.start_offset = 8192;
    f.payload = "raw wal record bytes";
    const std::string frame = EncodeReplFrame(f);
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    auto decoded = DecodeReplFrame(body.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().tag, ReplFrame::Tag::kSegment);
    EXPECT_EQ(decoded.value().start_offset, 8192u);
    EXPECT_EQ(decoded.value().payload, "raw wal record bytes");
  }
  {
    ReplFrame f;
    f.tag = ReplFrame::Tag::kHeartbeat;
    f.token = 6;
    f.positions = {{2, 13}, {4, 65536}};
    const std::string frame = EncodeReplFrame(f);
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    auto decoded = DecodeReplFrame(body.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().tag, ReplFrame::Tag::kHeartbeat);
    EXPECT_EQ(decoded.value().token, 6u);
    EXPECT_EQ(decoded.value().positions, f.positions);
  }
  {
    ReplFrame f;
    f.tag = ReplFrame::Tag::kAck;
    f.shard = 3;
    f.epoch = 2;
    f.offset = 777;
    const std::string frame = EncodeReplFrame(f);
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    auto decoded = DecodeReplFrame(body.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().tag, ReplFrame::Tag::kAck);
    EXPECT_EQ(decoded.value().shard, 3u);
    EXPECT_EQ(decoded.value().epoch, 2u);
    EXPECT_EQ(decoded.value().offset, 777u);
  }
  {
    ReplFrame f;
    f.tag = ReplFrame::Tag::kFence;
    f.token = 11;
    const std::string frame = EncodeReplFrame(f);
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    auto decoded = DecodeReplFrame(body.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().tag, ReplFrame::Tag::kFence);
    EXPECT_EQ(decoded.value().token, 11u);
  }
  {
    // v6: one piece of a chunked bootstrap snapshot. No epoch — only
    // the terminator carries it.
    ReplFrame f;
    f.tag = ReplFrame::Tag::kSnapshotChunk;
    f.shard = 1;
    f.payload = std::string("chunk bytes\x00\xff", 13);
    const std::string frame = EncodeReplFrame(f);
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    auto decoded = DecodeReplFrame(body.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().tag, ReplFrame::Tag::kSnapshotChunk);
    EXPECT_EQ(decoded.value().shard, 1u);
    EXPECT_EQ(decoded.value().payload, f.payload);
  }
  {
    // v6: the chunked-snapshot terminator installs the assembled image
    // under this epoch.
    ReplFrame f;
    f.tag = ReplFrame::Tag::kSnapshotEnd;
    f.shard = 1;
    f.epoch = 4;
    const std::string frame = EncodeReplFrame(f);
    size_t frame_size = 0;
    auto body = DecodeFrame(frame, &frame_size);
    ASSERT_TRUE(body.ok());
    auto decoded = DecodeReplFrame(body.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().tag, ReplFrame::Tag::kSnapshotEnd);
    EXPECT_EQ(decoded.value().shard, 1u);
    EXPECT_EQ(decoded.value().epoch, 4u);
    EXPECT_TRUE(decoded.value().payload.empty());
  }
}

TEST(ProtocolTest, DecodeReplFrameRejectsMalformedBodies) {
  // Empty body.
  EXPECT_EQ(DecodeReplFrame("").status().code(), StatusCode::kCorruption);
  // Unknown tag byte (0 and one past the last defined tag).
  EXPECT_EQ(DecodeReplFrame(std::string(1, '\x00')).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeReplFrame(std::string(1, '\x08')).status().code(),
            StatusCode::kCorruption);
  // Truncation at every byte of a SEGMENT body.
  ReplFrame f;
  f.tag = ReplFrame::Tag::kSegment;
  f.shard = 1;
  f.epoch = 3;
  f.start_offset = 8192;
  f.payload = "wal bytes";
  const std::string frame = EncodeReplFrame(f);
  size_t frame_size = 0;
  const std::string body(DecodeFrame(frame, &frame_size).value());
  for (size_t cut = 1; cut < body.size(); ++cut) {
    EXPECT_EQ(DecodeReplFrame(body.substr(0, cut)).status().code(),
              StatusCode::kCorruption)
        << "cut=" << cut;
  }
  // Trailing bytes after a complete body.
  EXPECT_EQ(DecodeReplFrame(body + "x").status().code(),
            StatusCode::kCorruption);
  // Same discipline for the v6 chunked-snapshot frames.
  ReplFrame chunk;
  chunk.tag = ReplFrame::Tag::kSnapshotChunk;
  chunk.shard = 2;
  chunk.payload = "piece";
  const std::string chunk_frame = EncodeReplFrame(chunk);
  const std::string chunk_body(
      DecodeFrame(chunk_frame, &frame_size).value());
  for (size_t cut = 1; cut < chunk_body.size(); ++cut) {
    EXPECT_EQ(DecodeReplFrame(chunk_body.substr(0, cut)).status().code(),
              StatusCode::kCorruption)
        << "chunk cut=" << cut;
  }
  EXPECT_EQ(DecodeReplFrame(chunk_body + "x").status().code(),
            StatusCode::kCorruption);
  ReplFrame end;
  end.tag = ReplFrame::Tag::kSnapshotEnd;
  end.shard = 2;
  end.epoch = 6;
  const std::string end_frame = EncodeReplFrame(end);
  const std::string end_body(DecodeFrame(end_frame, &frame_size).value());
  for (size_t cut = 1; cut < end_body.size(); ++cut) {
    EXPECT_EQ(DecodeReplFrame(end_body.substr(0, cut)).status().code(),
              StatusCode::kCorruption)
        << "end cut=" << cut;
  }
  EXPECT_EQ(DecodeReplFrame(end_body + "x").status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, StatsRejectsWrongLatencyRowCount) {
  // The latency-row count is pinned at kNumLatencyOps: a peer that
  // disagrees about the op set must read as corrupt, never as a
  // partially-parsed STATS payload.
  Response r;
  r.op = Request::Op::kStats;
  const std::string frame = EncodeResponse(r);
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  ASSERT_TRUE(body.ok());
  std::string mutable_body(body.value());
  // Body layout for an all-default STATS: op + code + empty message
  // (3 bytes), then 12 zero varints, then the latency-row count.
  const size_t count_offset = 3 + 12;
  ASSERT_EQ(static_cast<uint8_t>(mutable_body[count_offset]),
            kNumLatencyOps);
  for (uint8_t wrong : {0, 5, 7, 127}) {
    std::string corrupt = mutable_body;
    corrupt[count_offset] = static_cast<char>(wrong);
    EXPECT_EQ(DecodeResponse(corrupt).status().code(),
              StatusCode::kCorruption)
        << "count=" << static_cast<int>(wrong);
  }
}

TEST(ProtocolTest, StatsRejectsAbsurdLevelCount) {
  // v6: the level-row count is length-checked before the resize — a
  // count that cannot fit in the remaining bytes (≥5 varints per row)
  // must read as corruption, not a giant allocation.
  Response r;
  r.op = Request::Op::kStats;
  const std::string frame = EncodeResponse(r);
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  ASSERT_TRUE(body.ok());
  std::string mutable_body(body.value());
  // An all-default STATS body ends with the n_levels varint (0) then
  // the v7 n_tags varint (0).
  ASSERT_GE(mutable_body.size(), 2u);
  ASSERT_EQ(mutable_body[mutable_body.size() - 2], '\x00');
  // 127 claimed level rows with only the n_tags byte left cannot fit.
  mutable_body[mutable_body.size() - 2] = '\x7f';
  EXPECT_EQ(DecodeResponse(mutable_body).status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, StatsRejectsAbsurdTagCount) {
  // v7: same guard for the per-tag rows — each needs ≥31 bytes (seven
  // varints + three fixed doubles + the name's length prefix), so a
  // count the remaining bytes cannot hold is corruption up front.
  Response r;
  r.op = Request::Op::kStats;
  const std::string frame = EncodeResponse(r);
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  ASSERT_TRUE(body.ok());
  std::string mutable_body(body.value());
  ASSERT_EQ(mutable_body.back(), '\x00');  // n_tags of an empty STATS
  mutable_body.back() = '\x7f';  // claims 127 rows with 0 bytes left
  EXPECT_EQ(DecodeResponse(mutable_body).status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, BusyResponseRoundTrip) {
  // v3: an admission-control refusal — the record was never staged, so
  // there is no wal_offset to report. v7: the one non-OK response with
  // a payload — the refusing tag's retry_after_ms hint (ingest/merge).
  Response r;
  r.op = Request::Op::kIngest;
  r.code = StatusCode::kBusy;
  r.message = "staged-bytes budget exceeded";
  r.retry_after_ms = 10;
  const Response decoded = RoundTripResponse(r);
  EXPECT_EQ(decoded.code, StatusCode::kBusy);
  EXPECT_EQ(decoded.wal_offset, 0u);
  EXPECT_EQ(decoded.retry_after_ms, 10u);
  const Status status = ResponseStatus(decoded);
  EXPECT_EQ(status.code(), StatusCode::kBusy);
  EXPECT_EQ(status.message(), "staged-bytes budget exceeded");

  // A merge refusal carries the hint too; a hint of 0 survives as 0.
  Response merge;
  merge.op = Request::Op::kMerge;
  merge.code = StatusCode::kBusy;
  merge.retry_after_ms = 250;
  EXPECT_EQ(RoundTripResponse(merge).retry_after_ms, 250u);
  Response unhinted;
  unhinted.op = Request::Op::kIngest;
  unhinted.code = StatusCode::kBusy;
  EXPECT_EQ(RoundTripResponse(unhinted).retry_after_ms, 0u);

  // Only ingest/merge refusals carry the payload: a BUSY on any other
  // op stays bare, so the hint field is dropped on the wire.
  Response query;
  query.op = Request::Op::kQuery;
  query.code = StatusCode::kBusy;
  query.retry_after_ms = 99;
  EXPECT_EQ(RoundTripResponse(query).retry_after_ms, 0u);

  // A BUSY body with trailing payload bytes is corrupt, not lenient.
  const std::string frame = EncodeResponse(r);
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(DecodeResponse(std::string(body.value()) + "\x01").status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, ErrorResponseCarriesStatus) {
  Response r;
  r.op = Request::Op::kMerge;
  r.code = StatusCode::kIncompatible;
  r.message = "sketch parameters mismatch";
  const Response decoded = RoundTripResponse(r);
  const Status status = ResponseStatus(decoded);
  EXPECT_EQ(status.code(), StatusCode::kIncompatible);
  EXPECT_EQ(status.message(), "sketch parameters mismatch");
  EXPECT_TRUE(ResponseStatus(Response{}).ok());
}

TEST(ProtocolTest, DecodeFrameReportsIncompleteOnEveryPrefix) {
  Request request;
  request.op = Request::Op::kIngest;
  request.series = "s";
  request.value = 1.0;
  const std::string frame = EncodeRequest(request);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    size_t frame_size = 0;
    auto body = DecodeFrame(std::string_view(frame).substr(0, cut), &frame_size);
    ASSERT_FALSE(body.ok()) << "cut=" << cut;
    EXPECT_EQ(body.status().code(), StatusCode::kOutOfRange) << "cut=" << cut;
  }
}

TEST(ProtocolTest, DecodeFrameRejectsEveryBodyBitFlip) {
  Request request;
  request.op = Request::Op::kQuery;
  request.series = "svc";
  request.quantiles = {0.5};
  const std::string frame = EncodeRequest(request);
  // Flip one bit in each body byte (skip the length varint: changing it
  // legitimately reads as incomplete). The CRC must catch all of them.
  size_t frame_size = 0;
  auto clean = DecodeFrame(frame, &frame_size);
  ASSERT_TRUE(clean.ok());
  const size_t body_offset = frame.size() - clean.value().size();
  for (size_t i = body_offset; i < frame.size(); ++i) {
    std::string corrupt = frame;
    corrupt[i] = static_cast<char>(static_cast<uint8_t>(corrupt[i]) ^ 0x01);
    size_t ignored = 0;
    auto body = DecodeFrame(corrupt, &ignored);
    ASSERT_FALSE(body.ok()) << "byte " << i;
    EXPECT_EQ(body.status().code(), StatusCode::kCorruption) << "byte " << i;
  }
}

TEST(ProtocolTest, DecodeFrameRejectsAbsurdLength) {
  std::string frame;
  // Varint for 2^40: far beyond kMaxFrameBytes.
  for (int i = 0; i < 5; ++i) frame.push_back(static_cast<char>(0x80));
  frame.push_back(0x01);
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, DecodeFrameRejectsMalformedLengthVarint) {
  // Ten continuation bytes can never become a valid length no matter
  // how much more is read: must be Corruption, not "incomplete" (a
  // reader treating it as incomplete would buffer garbage forever).
  std::string frame(10, static_cast<char>(0xff));
  size_t frame_size = 0;
  auto body = DecodeFrame(frame, &frame_size);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), StatusCode::kCorruption);
  // But the same bytes cut short are still just an incomplete frame.
  auto partial = DecodeFrame(std::string_view(frame).substr(0, 6), &frame_size);
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(partial.status().code(), StatusCode::kOutOfRange);
}

TEST(ProtocolTest, DecodeFrameConsumesOneFrameFromAStream) {
  Request first;
  first.op = Request::Op::kStats;
  Request second;
  second.op = Request::Op::kCheckpoint;
  const std::string stream = EncodeRequest(first) + EncodeRequest(second);
  size_t frame_size = 0;
  auto body1 = DecodeFrame(stream, &frame_size);
  ASSERT_TRUE(body1.ok());
  auto decoded1 = DecodeRequest(body1.value());
  ASSERT_TRUE(decoded1.ok());
  EXPECT_EQ(decoded1.value().op, Request::Op::kStats);
  auto body2 =
      DecodeFrame(std::string_view(stream).substr(frame_size), &frame_size);
  ASSERT_TRUE(body2.ok());
  auto decoded2 = DecodeRequest(body2.value());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2.value().op, Request::Op::kCheckpoint);
}

TEST(ProtocolTest, DecodeRequestRejectsMalformedBodies) {
  // Empty body.
  EXPECT_EQ(DecodeRequest("").status().code(), StatusCode::kCorruption);
  // Unknown op (kSetTag=9 is the v7 ceiling).
  EXPECT_EQ(DecodeRequest(std::string(1, '\x0a')).status().code(),
            StatusCode::kCorruption);
  // A SET_TAG body truncated before its tag field.
  EXPECT_EQ(DecodeRequest(std::string(1, '\x09')).status().code(),
            StatusCode::kCorruption);
  // Truncated INGEST body.
  Request request;
  request.op = Request::Op::kIngest;
  request.series = "s";
  request.value = 1.0;
  const std::string frame = EncodeRequest(request);
  size_t frame_size = 0;
  const std::string body(DecodeFrame(frame, &frame_size).value());
  for (size_t cut = 1; cut < body.size(); ++cut) {
    EXPECT_EQ(DecodeRequest(body.substr(0, cut)).status().code(),
              StatusCode::kCorruption)
        << "cut=" << cut;
  }
  // Trailing bytes after a complete body.
  EXPECT_EQ(DecodeRequest(body + "x").status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, DecodeResponseRejectsMalformedBodies) {
  EXPECT_EQ(DecodeResponse("").status().code(), StatusCode::kCorruption);
  // Unknown status code byte.
  std::string body;
  body.push_back(static_cast<char>(Request::Op::kIngest));
  body.push_back('\x63');  // status code 99
  body.push_back('\x00');  // empty message
  EXPECT_EQ(DecodeResponse(body).status().code(), StatusCode::kCorruption);
  // Series-length field pointing past the end of the frame.
  std::string overrun;
  overrun.push_back(static_cast<char>(Request::Op::kQuery));
  overrun.push_back('\x00');  // kOk
  overrun.push_back('\x7f');  // message length 127, but no bytes follow
  EXPECT_EQ(DecodeResponse(overrun).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dd
