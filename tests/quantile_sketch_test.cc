#include "api/quantile_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "data/ground_truth.h"

namespace dd {
namespace {

std::vector<std::unique_ptr<QuantileSketch>> AllFamilies() {
  std::vector<std::unique_ptr<QuantileSketch>> sketches;
  sketches.push_back(std::move(NewDDSketch()).value());
  sketches.push_back(std::move(NewGKArray()).value());
  sketches.push_back(std::move(NewHdrHistogram(2, 1.0, 1e12)).value());
  sketches.push_back(std::move(NewMomentSketch()).value());
  sketches.push_back(std::move(NewTDigest()).value());
  sketches.push_back(std::move(NewKllSketch()).value());
  sketches.push_back(std::move(NewCkmsSketch()).value());
  return sketches;
}

TEST(QuantileSketchApiTest, FamiliesAreDistinct) {
  const auto sketches = AllFamilies();
  const char* expected[] = {"ddsketch", "gk",  "hdr", "moments",
                            "tdigest",  "kll", "ckms"};
  ASSERT_EQ(sketches.size(), 7u);
  for (size_t i = 0; i < sketches.size(); ++i) {
    EXPECT_STREQ(sketches[i]->family(), expected[i]);
  }
}

TEST(QuantileSketchApiTest, FactoryValidationPropagates) {
  EXPECT_FALSE(NewDDSketch(2.0).ok());
  EXPECT_FALSE(NewGKArray(0.0).ok());
  EXPECT_FALSE(NewHdrHistogram(9, 1.0, 100.0).ok());
  EXPECT_FALSE(NewMomentSketch(1).ok());
  EXPECT_FALSE(NewTDigest(1.0).ok());
  EXPECT_FALSE(NewKllSketch(2).ok());
  EXPECT_FALSE(NewCkmsSketch({}).ok());
}

TEST(QuantileSketchApiTest, PolymorphicPipelineAnswersSanely) {
  // One loop drives every family through the same interface; all give a
  // usable median on well-behaved data.
  auto sketches = AllFamilies();
  const auto data = GenerateDataset(DatasetId::kPower, 100000);
  ExactQuantiles truth(data);
  for (auto& sketch : sketches) {
    for (double x : data) sketch->Add(x);
    EXPECT_EQ(sketch->count(), data.size()) << sketch->family();
    auto median = sketch->Quantile(0.5);
    ASSERT_TRUE(median.ok()) << sketch->family();
    EXPECT_LE(RelativeError(median.value(), truth.Quantile(0.5)), 0.12)
        << sketch->family();
    EXPECT_GT(sketch->size_in_bytes(), 0u);
  }
}

TEST(QuantileSketchApiTest, SerializeSniffDeserializeEveryFamily) {
  auto sketches = AllFamilies();
  const auto data = GenerateDataset(DatasetId::kPareto, 20000);
  for (auto& sketch : sketches) {
    for (double x : data) sketch->Add(x);
    const std::string payload = sketch->Serialize();
    auto decoded = DeserializeSketch(payload);
    ASSERT_TRUE(decoded.ok())
        << sketch->family() << ": " << decoded.status().ToString();
    EXPECT_STREQ(decoded.value()->family(), sketch->family());
    EXPECT_EQ(decoded.value()->count(), sketch->count());
    for (double q : {0.25, 0.5, 0.9}) {
      EXPECT_DOUBLE_EQ(decoded.value()->QuantileOrNaN(q),
                       sketch->QuantileOrNaN(q))
          << sketch->family() << " q=" << q;
    }
  }
  EXPECT_FALSE(DeserializeSketch("??").ok());
  EXPECT_FALSE(DeserializeSketch("XXXXYYYY").ok());
}

TEST(QuantileSketchApiTest, CrossFamilyMergeRejected) {
  auto sketches = AllFamilies();
  for (auto& sketch : sketches) sketch->Add(1.0);
  for (size_t i = 0; i < sketches.size(); ++i) {
    for (size_t j = 0; j < sketches.size(); ++j) {
      const Status s = sketches[i]->MergeFrom(*sketches[j]);
      if (i == j) {
        EXPECT_TRUE(s.ok()) << sketches[i]->family();
      } else {
        EXPECT_EQ(s.code(), StatusCode::kIncompatible)
            << sketches[i]->family() << " <- " << sketches[j]->family();
      }
    }
  }
}

TEST(QuantileSketchApiTest, SameFamilyMergeWorksPolymorphically) {
  auto a = std::move(NewDDSketch()).value();
  auto b = std::move(NewDDSketch()).value();
  for (int i = 1; i <= 100; ++i) {
    a->Add(static_cast<double>(i));
    b->Add(static_cast<double>(100 + i));
  }
  ASSERT_TRUE(a->MergeFrom(*b).ok());
  EXPECT_EQ(a->count(), 200u);
  EXPECT_NEAR(a->QuantileOrNaN(0.5), 100.0, 100 * 0.011);
}

TEST(QuantileSketchApiTest, CloneIsIndependent) {
  auto sketches = AllFamilies();
  for (auto& sketch : sketches) {
    sketch->Add(5.0);
    auto clone = sketch->Clone();
    sketch->Add(500.0);
    EXPECT_EQ(clone->count(), 1u) << sketch->family();
    EXPECT_EQ(sketch->count(), 2u) << sketch->family();
    EXPECT_STREQ(clone->family(), sketch->family());
  }
}

TEST(QuantileSketchApiTest, CkmsWireRoundTripPreservesTargets) {
  auto sketch =
      std::move(CkmsSketch::Create({{0.42, 0.013}, {0.9, 0.004}})).value();
  for (int i = 0; i < 5000; ++i) sketch.Add(static_cast<double>(i));
  auto decoded = CkmsSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().targets().size(), 2u);
  EXPECT_DOUBLE_EQ(decoded.value().targets()[0].quantile, 0.42);
  EXPECT_DOUBLE_EQ(decoded.value().targets()[1].epsilon, 0.004);
  EXPECT_EQ(decoded.value().count(), 5000u);
  for (double q : {0.42, 0.9}) {
    EXPECT_DOUBLE_EQ(decoded.value().QuantileOrNaN(q),
                     sketch.QuantileOrNaN(q));
  }
}

}  // namespace
}  // namespace dd
