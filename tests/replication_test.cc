// End-to-end tests for WAL-shipping replication with fenced failover
// (server/replication.h, docs/PROTOCOL.md v5). The centerpiece is a
// kill-the-primary drill over real processes: a forked primary is
// SIGKILLed mid-burst, the follower is promoted, and every record the
// client was ever acked must be queryable on the new primary — the
// semi-synchronous ack gate (client acks park until subscribers confirm
// the batch) is what makes that a hard guarantee rather than a race.
// The rest covers bit-exact follower reads, live demotion via the FENCE
// frame, follower restart mid-tail, checkpoint-crossing resync, and the
// ex-primary rejoining fenced.

#include "server/replication.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "server/client.h"
#include "server/server.h"
#include "timeseries/durable_store.h"
#include "timeseries/sketch_store.h"
#include "timeseries/snapshot.h"
#include "util/status.h"

namespace dd {
namespace {

namespace fs = std::filesystem;

/// Polls `condition` every 10 ms until true or `timeout_ms` elapses.
bool AwaitTrue(const std::function<bool()>& condition,
               int64_t timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return condition();
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("dd_repl_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  static std::unique_ptr<SketchServer> MustStart(
      const std::string& dir, const SketchServerOptions& options = {}) {
    auto server = SketchServer::Start(dir, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  static SketchClient MustConnect(uint16_t port) {
    auto client = SketchClient::Connect("127.0.0.1", port);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  static SketchServerOptions FollowerOptions(uint16_t primary_port) {
    SketchServerOptions options;
    options.durable.role = StoreRole::kFollower;
    options.follow_host = "127.0.0.1";
    options.follow_port = primary_port;
    return options;
  }

  /// Blocks until `server`'s STATS report at least `n` replication
  /// subscribers (i.e. a follower finished SUBSCRIBE and was adopted).
  static void AwaitSubscribers(uint16_t port, uint64_t n) {
    SketchClient client = MustConnect(port);
    ASSERT_TRUE(AwaitTrue([&] {
      auto stats = client.Stats();
      return stats.ok() && stats.value().repl_subscribers >= n;
    })) << "no follower subscribed in time";
  }

  fs::path root_;
};

// ---------------------------------------------------------------------------
// Bit-exact follower reads: both stores apply the identical WAL record
// stream, so quantiles must match to the last bit, not just within
// alpha.

TEST_F(ReplicationTest, FollowerAnswersQueriesBitExact) {
  auto primary = MustStart(Dir("primary"));
  auto follower =
      MustStart(Dir("follower"), FollowerOptions(primary->port()));
  AwaitSubscribers(primary->port(), 1);

  SketchClient client = MustConnect(primary->port());
  for (int i = 0; i < 400; ++i) {
    const double value = 1.0 + (i % 83) * 0.25;
    const int64_t ts = (i % 20) * 10;
    ASSERT_TRUE(client.IngestValue("api.latency", ts, value).ok());
  }
  // Semi-sync replication means the last OK ack already implies the
  // follower applied everything before it — no settling sleep needed.
  SketchClient follower_client = MustConnect(follower->port());
  const std::vector<double> qs = {0.1, 0.5, 0.9, 0.99, 0.999};
  auto on_primary = client.Query("api.latency", 0, 200, qs);
  auto on_follower = follower_client.Query("api.latency", 0, 200, qs);
  ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
  ASSERT_TRUE(on_follower.ok()) << on_follower.status().ToString();
  ASSERT_EQ(on_primary.value().size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(on_primary.value()[i], on_follower.value()[i]) << "q=" << qs[i];
  }

  // Followers are read-only: writes are refused with FENCED, and the
  // refusal never reaches the follower's WAL.
  EXPECT_EQ(follower_client.IngestValue("api.latency", 0, 1.0).code(),
            StatusCode::kFenced);
  auto stats = follower_client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().role, 1u);
  EXPECT_EQ(stats.value().repl_connected, 1u);
}

// ---------------------------------------------------------------------------
// The headline drill: SIGKILL the primary process mid-burst, promote
// the follower, and require every acked record to be queryable on the
// new primary. The primary runs in a forked child (forked before this
// process starts any server threads, so the child is async-signal
// clean); acks gate on follower confirmation, which is exactly the
// property that makes "acked implies survives failover" true.

TEST_F(ReplicationTest, KillThePrimaryLosesNoAckedRecord) {
  const std::string primary_dir = Dir("primary");
  const std::string follower_dir = Dir("follower");

  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: run the primary until SIGKILLed. Nothing here may touch
    // gtest; exit paths use _exit.
    ::close(port_pipe[0]);
    SketchServerOptions options;
    options.repl_ack_timeout_ms = 5000;
    auto server = SketchServer::Start(primary_dir, options);
    if (!server.ok()) {
      const uint32_t zero = 0;
      (void)!::write(port_pipe[1], &zero, sizeof(zero));
      ::_exit(1);
    }
    const uint32_t port = server.value()->port();
    (void)!::write(port_pipe[1], &port, sizeof(port));
    ::close(port_pipe[1]);
    for (;;) ::pause();
  }
  ::close(port_pipe[1]);
  uint32_t primary_port = 0;
  ASSERT_EQ(::read(port_pipe[0], &primary_port, sizeof(primary_port)),
            static_cast<ssize_t>(sizeof(primary_port)));
  ::close(port_pipe[0]);
  ASSERT_GT(primary_port, 0u) << "child primary failed to start";

  auto follower = MustStart(
      follower_dir, FollowerOptions(static_cast<uint16_t>(primary_port)));
  AwaitSubscribers(static_cast<uint16_t>(primary_port), 1);

  // Burst with the kill landing mid-way. The client is synchronous, so
  // when the kill lands between an ack and the next request, the acked
  // prefix is exactly the record set the new primary must hold — no
  // more (nothing else was ever sent), no less (acks gate on the
  // follower's confirmation).
  SketchClient client = MustConnect(static_cast<uint16_t>(primary_port));
  constexpr int kBurst = 800;
  constexpr int kKillAt = 300;
  int acked = 0;
  for (int i = 0; i < kBurst; ++i) {
    if (i == kKillAt) {
      ASSERT_EQ(::kill(child, SIGKILL), 0);
    }
    const Status status =
        client.IngestValue("kill.burst", i, 100.0 + i);
    if (!status.ok()) break;  // the socket died with the primary
    ++acked;
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  // Every pre-kill ingest must have been acked OK (BUSY is retried
  // internally and nothing else may refuse) — this pins the test
  // deterministic instead of "however far the burst got".
  ASSERT_EQ(acked, kKillAt);

  // Failover: promote the follower through the wire protocol.
  SketchClient follower_client = MustConnect(follower->port());
  auto token = follower_client.Promote();
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  EXPECT_GE(token.value(), 1u);

  // The new primary's state must be bit-exact equal to an in-process
  // reference holding exactly the acked records: nothing acked is
  // missing, and nothing unacked leaked in.
  auto ref = std::move(SketchStore::Create(SketchStoreOptions{})).value();
  for (int i = 0; i < acked; ++i) {
    ASSERT_TRUE(ref.IngestValue("kill.burst", i, 100.0 + i).ok());
  }
  const std::vector<double> qs = {0.1, 0.5, 0.9, 0.99};
  auto survived = follower_client.Query("kill.burst", 0, kBurst, qs);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(survived.value()[i],
              std::move(ref.QueryQuantile("kill.burst", 0, kBurst, qs[i]))
                  .value())
        << "q=" << qs[i];
  }

  // The new primary accepts writes.
  ASSERT_TRUE(
      follower_client.IngestValue("kill.burst", kBurst, 5000.0).ok());

  // The ex-primary's directory rejoins as a follower of the new
  // primary, adopts its fencing token, resyncs, and refuses writes.
  auto rejoined = MustStart(primary_dir, FollowerOptions(follower->port()));
  AwaitSubscribers(follower->port(), 1);
  SketchClient rejoined_client = MustConnect(rejoined->port());
  EXPECT_EQ(rejoined_client.IngestValue("kill.burst", 0, 1.0).code(),
            StatusCode::kFenced);
  // One more write through the new primary: its OK ack implies the
  // rejoined follower applied everything up to it, after which the two
  // must answer identically.
  ASSERT_TRUE(
      follower_client.IngestValue("kill.burst", kBurst + 1, 6000.0).ok());
  auto on_new_primary =
      follower_client.Query("kill.burst", 0, kBurst + 2, qs);
  auto on_rejoined = rejoined_client.Query("kill.burst", 0, kBurst + 2, qs);
  ASSERT_TRUE(on_new_primary.ok()) << on_new_primary.status().ToString();
  ASSERT_TRUE(on_rejoined.ok()) << on_rejoined.status().ToString();
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(on_new_primary.value()[i], on_rejoined.value()[i])
        << "q=" << qs[i];
  }
}

// ---------------------------------------------------------------------------
// Live demotion: promoting the follower while the old primary is still
// up must fence the old primary (FENCE frame upstream), so a
// split-brain window closes with FENCED refusals instead of divergence.

TEST_F(ReplicationTest, PromotingTheFollowerFencesALivePrimary) {
  auto primary = MustStart(Dir("primary"));
  auto follower =
      MustStart(Dir("follower"), FollowerOptions(primary->port()));
  AwaitSubscribers(primary->port(), 1);

  SketchClient client = MustConnect(primary->port());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.IngestValue("demote", i, 1.0 + i).ok());
  }

  SketchClient follower_client = MustConnect(follower->port());
  auto token = follower_client.Promote();
  ASSERT_TRUE(token.ok()) << token.status().ToString();

  // The FENCE frame races the promote's return; poll until the old
  // primary starts refusing. Once fenced it must stay fenced (sticky),
  // even for brand-new series.
  ASSERT_TRUE(AwaitTrue([&] {
    return client.IngestValue("demote", 1000, 1.0).code() ==
           StatusCode::kFenced;
  })) << "old primary never fenced after follower promotion";
  EXPECT_EQ(client.IngestValue("fresh.series", 0, 1.0).code(),
            StatusCode::kFenced);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().fenced, 1u);
  EXPECT_GE(stats.value().fence_token, token.value());

  // CHECKPOINT is a write too: a fenced primary refuses it.
  SketchClient fenced_client = MustConnect(primary->port());
  EXPECT_EQ(fenced_client.Checkpoint().status().code(), StatusCode::kFenced);

  // The promoted follower serves reads and writes.
  ASSERT_TRUE(follower_client.IngestValue("demote", 100, 42.0).ok());
  auto q = follower_client.Query("demote", 100, 101, {0.5});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

// ---------------------------------------------------------------------------
// A follower that restarts mid-tail must resync (snapshot bootstrap or
// segment resume) and converge to the primary's exact state.

TEST_F(ReplicationTest, FollowerRestartMidTailResyncs) {
  auto primary = MustStart(Dir("primary"));
  const std::string follower_dir = Dir("follower");
  auto follower =
      MustStart(follower_dir, FollowerOptions(primary->port()));
  AwaitSubscribers(primary->port(), 1);

  SketchClient client = MustConnect(primary->port());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.IngestValue("restart", i % 50, 1.0 + i).ok());
  }
  follower->Stop();
  follower.reset();

  // The primary keeps accepting writes with no follower attached (the
  // ack gate degrades to async once the last subscriber is gone).
  for (int i = 200; i < 400; ++i) {
    ASSERT_TRUE(client.IngestValue("restart", i % 50, 1.0 + i).ok());
  }

  follower = MustStart(follower_dir, FollowerOptions(primary->port()));
  AwaitSubscribers(primary->port(), 1);
  // A post-resubscribe write's OK ack implies the follower caught up.
  ASSERT_TRUE(client.IngestValue("restart", 49, 999.0).ok());

  SketchClient follower_client = MustConnect(follower->port());
  const std::vector<double> qs = {0.25, 0.5, 0.75, 0.99};
  auto on_primary = client.Query("restart", 0, 50, qs);
  auto on_follower = follower_client.Query("restart", 0, 50, qs);
  ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
  ASSERT_TRUE(on_follower.ok()) << on_follower.status().ToString();
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(on_primary.value()[i], on_follower.value()[i]) << "q=" << qs[i];
  }
}

// ---------------------------------------------------------------------------
// A checkpoint on the primary bumps the WAL epoch; the shipper resyncs
// subscribers across it (snapshot, then segments of the new epoch), and
// the follower's visible epoch advances to match.

TEST_F(ReplicationTest, FollowerCrossesPrimaryCheckpoints) {
  SketchServerOptions primary_options;
  auto primary = MustStart(Dir("primary"), primary_options);
  auto follower =
      MustStart(Dir("follower"), FollowerOptions(primary->port()));
  AwaitSubscribers(primary->port(), 1);

  SketchClient client = MustConnect(primary->port());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.IngestValue("ckpt", i % 10, 1.0 + i).ok());
  }
  auto epoch = client.Checkpoint();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  ASSERT_GE(epoch.value(), 2u);
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(client.IngestValue("ckpt", i % 10, 1.0 + i).ok());
  }

  // The last OK ack means the follower confirmed a position in the
  // post-checkpoint epoch; its own epoch must have advanced with it.
  SketchClient follower_client = MustConnect(follower->port());
  auto stats = follower_client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().epoch, epoch.value());

  const std::vector<double> qs = {0.5, 0.9, 0.999};
  auto on_primary = client.Query("ckpt", 0, 10, qs);
  auto on_follower = follower_client.Query("ckpt", 0, 10, qs);
  ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
  ASSERT_TRUE(on_follower.ok()) << on_follower.status().ToString();
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(on_primary.value()[i], on_follower.value()[i]) << "q=" << qs[i];
  }
}

// ---------------------------------------------------------------------------
// The failover flow's hard case: the deposed primary died holding a
// durable WAL suffix that was never replicated (committed, but the kill
// landed before the follower confirmed — so never acked to any client).
// When its directory rejoins as a follower, that divergent suffix must
// be discarded via a snapshot resync — never tailed as if it were a
// prefix of the new primary's log (which would either CRC-livelock the
// session or, worse, silently keep diverged state). Promotion bumps the
// WAL epoch and the rejoiner's stale fencing token voids its resume
// positions; both independently force the snapshot path.

TEST_F(ReplicationTest, DeposedPrimaryDivergentSuffixIsDiscardedOnRejoin) {
  const std::string a_dir = Dir("a");
  auto a = MustStart(a_dir);
  auto b = MustStart(Dir("b"), FollowerOptions(a->port()));
  AwaitSubscribers(a->port(), 1);

  SketchClient client = MustConnect(a->port());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.IngestValue("base", i % 10, 1.0 + i).ok());
  }
  // "Kill" A and give its directory the un-replicated durable suffix a
  // real mid-burst kill leaves behind: records in A's WAL that B never
  // received (and no client was ever acked).
  a->Stop();
  a.reset();
  {
    auto store = DurableSketchStore::Open(a_dir, {});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 0; i < 37; ++i) {
      ASSERT_TRUE(store.value().IngestValue("divergent", i, 7.0 + i).ok());
    }
  }

  // Failover to B, then move its log past A's (same-epoch offsets would
  // otherwise tempt a naive shipper into tailing A's divergent bytes).
  SketchClient b_client = MustConnect(b->port());
  auto token = b_client.Promote();
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(b_client.IngestValue("post", i % 10, 2.0 + i).ok());
  }
  // Grow "base" past the promotion too: the series now spans the
  // snapshot and the tail epoch, so any record applied twice during
  // the rejoin's resync (e.g. a snapshot that already contained tail
  // bytes which are then shipped again) shifts its quantiles and fails
  // the bit-exact comparison below.
  for (int i = 100; i < 160; ++i) {
    ASSERT_TRUE(b_client.IngestValue("base", i % 10, 1.0 + i).ok());
  }

  auto rejoined = MustStart(a_dir, FollowerOptions(b->port()));
  AwaitSubscribers(b->port(), 1);
  // Semi-sync: this ack means the rejoined follower confirmed a
  // position at or past it — i.e. it finished resyncing.
  ASSERT_TRUE(b_client.IngestValue("post", 100, 999.0).ok());

  // The divergent suffix is gone: neither server knows the series.
  SketchClient rejoined_client = MustConnect(rejoined->port());
  EXPECT_FALSE(rejoined_client.Query("divergent", 0, 64, {0.5}).ok());
  EXPECT_FALSE(b_client.Query("divergent", 0, 64, {0.5}).ok());

  // Everything that *was* acked answers bit-exact on both.
  const std::vector<double> qs = {0.1, 0.5, 0.9, 0.99};
  for (const char* series : {"base", "post"}) {
    auto on_primary = b_client.Query(series, 0, 200, qs);
    auto on_rejoined = rejoined_client.Query(series, 0, 200, qs);
    ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
    ASSERT_TRUE(on_rejoined.ok()) << on_rejoined.status().ToString();
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(on_primary.value()[i], on_rejoined.value()[i])
          << series << " q=" << qs[i];
    }
  }
}

// ---------------------------------------------------------------------------
// A checkpoint with a caught-up follower attached must NOT ship a full
// snapshot: the shipper rolls the subscriber across the epoch boundary
// and the follower folds its own state (ApplyReplicatedSegment's
// checkpoint-crossing path). Snapshots are for followers that genuinely
// missed bytes (disconnected across the checkpoint), not for every
// live one on every checkpoint.

TEST_F(ReplicationTest, CheckpointShipsNoSnapshotToCaughtUpFollower) {
  auto primary = MustStart(Dir("primary"));
  auto follower =
      MustStart(Dir("follower"), FollowerOptions(primary->port()));
  AwaitSubscribers(primary->port(), 1);

  SketchClient client = MustConnect(primary->port());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.IngestValue("ride", i % 10, 1.0 + i).ok());
  }
  // The last ack implies the follower confirmed the pre-checkpoint end
  // of the log, so the subscriber is exactly at the epoch boundary.
  const uint64_t snapshots_before = primary->repl_snapshot_frames();
  auto epoch = client.Checkpoint();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(client.IngestValue("ride", i % 10, 1.0 + i).ok());
  }
  // Those post-checkpoint acks gated on the follower applying segments
  // of the new epoch — which it can only have done by crossing the
  // checkpoint. No snapshot may have been involved.
  EXPECT_EQ(primary->repl_snapshot_frames(), snapshots_before);

  SketchClient follower_client = MustConnect(follower->port());
  auto stats = follower_client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().epoch, epoch.value());
  const std::vector<double> qs = {0.5, 0.9, 0.999};
  auto on_primary = client.Query("ride", 0, 10, qs);
  auto on_follower = follower_client.Query("ride", 0, 10, qs);
  ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
  ASSERT_TRUE(on_follower.ok()) << on_follower.status().ToString();
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(on_primary.value()[i], on_follower.value()[i]) << "q=" << qs[i];
  }
}

// ---------------------------------------------------------------------------
// The rollup determinism invariant, observed through replication: the
// ladder folds ONLY at epoch boundaries, and a follower crossing a
// checkpoint runs the identical fold (Compact at the same boundary over
// the same applied records, in the same order). So after a rollup
// checkpoint the two stores are byte-identical — not merely
// answer-identical — which is what lets snapshots, WAL shipping, and
// failover stay oblivious to how many resolution tiers exist.

TEST_F(ReplicationTest, FollowerCrossesARollupCheckpointByteExact) {
  const std::vector<RollupLevel> ladder = {{10, 120}, {60, 0}};
  SketchServerOptions primary_options;
  primary_options.durable.store.levels = ladder;
  auto primary = MustStart(Dir("primary"), primary_options);
  SketchServerOptions follower_options = FollowerOptions(primary->port());
  follower_options.durable.store.levels = ladder;
  auto follower = MustStart(Dir("follower"), follower_options);
  AwaitSubscribers(primary->port(), 1);

  SketchClient client = MustConnect(primary->port());
  // Aged data: spans ~2000s, far past the 120s raw retention, so the
  // COMPACT below has real folding to do.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        client.IngestValue("lad", i * 5, 1.0 + (i % 61) * 0.5).ok());
  }
  auto compacted = client.Compact(std::numeric_limits<int64_t>::max());
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_GT(compacted.value(), 0u);
  // Post-rollup ingest streams into the new epoch on both sides.
  for (int i = 400; i < 500; ++i) {
    ASSERT_TRUE(
        client.IngestValue("lad", i * 5, 2.0 + (i % 61) * 0.5).ok());
  }

  // The last OK ack gated on the follower applying an epoch-2 segment,
  // which it can only have done by running the rollup fold itself.
  SketchClient follower_client = MustConnect(follower->port());
  auto fstats = follower_client.Stats();
  ASSERT_TRUE(fstats.ok()) << fstats.status().ToString();
  EXPECT_GE(fstats.value().epoch, 2u);
  auto pstats = client.Stats();
  ASSERT_TRUE(pstats.ok()) << pstats.status().ToString();
  ASSERT_EQ(pstats.value().levels.size(), 2u);
  ASSERT_EQ(fstats.value().levels.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(pstats.value().levels[i].num_intervals,
              fstats.value().levels[i].num_intervals)
        << "level " << i;
    EXPECT_EQ(pstats.value().levels[i].rollup_merges,
              fstats.value().levels[i].rollup_merges)
        << "level " << i;
  }

  // Answers match bit-for-bit across windows touching every tier.
  const std::vector<double> qs = {0.1, 0.5, 0.9, 0.999};
  for (int64_t start = 0; start < 2400; start += 600) {
    auto on_primary = client.Query("lad", start, start + 600, qs);
    auto on_follower = follower_client.Query("lad", start, start + 600, qs);
    ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
    ASSERT_TRUE(on_follower.ok()) << on_follower.status().ToString();
    EXPECT_EQ(on_primary.value(), on_follower.value()) << "@" << start;
  }

  // The strong form: identical fold schedule means identical in-memory
  // state, so the two stores encode to the same snapshot bytes.
  follower->Stop();
  primary->Stop();
  DurableSketchStoreOptions open_options;
  open_options.store.levels = ladder;
  auto p = DurableSketchStore::Open(Dir("primary"), open_options);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  DurableSketchStoreOptions follower_open = open_options;
  follower_open.role = StoreRole::kFollower;
  auto f = DurableSketchStore::Open(Dir("follower"), follower_open);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(p.value().epoch(), f.value().epoch());
  EXPECT_EQ(EncodeSnapshot(p.value().store(), 0),
            EncodeSnapshot(f.value().store(), 0));
}

// ---------------------------------------------------------------------------
// Chunked snapshot bootstrap (v6): with the chunk size shrunk far below
// the image size, a late-joining follower's bootstrap must stream as a
// kSnapshotChunk train closed by kSnapshotEnd — and land it in exactly
// the same state a single-frame snapshot would have.

TEST_F(ReplicationTest, LateFollowerBootstrapsViaChunkedSnapshot) {
  SketchServerOptions primary_options;
  primary_options.repl_snapshot_chunk_bytes = 128;
  auto primary = MustStart(Dir("primary"), primary_options);
  SketchClient client = MustConnect(primary->port());
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(client
                    .IngestValue("svc." + std::to_string(i % 20), (i % 40) * 10,
                                 1.0 + (i % 97) * 0.5)
                    .ok());
  }
  // Checkpoint so the pre-join records live only in the snapshot — a
  // late follower cannot tail its way to them.
  auto epoch = client.Checkpoint();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  auto follower =
      MustStart(Dir("follower"), FollowerOptions(primary->port()));
  AwaitSubscribers(primary->port(), 1);
  // 20 populated series encode far past 128 bytes: the image cannot
  // have fit in one frame.
  EXPECT_GE(primary->repl_snapshot_frames(), 1u);

  // Post-bootstrap tailing still works on top of the installed image.
  ASSERT_TRUE(client.IngestValue("svc.0", 500, 42.0).ok());

  SketchClient follower_client = MustConnect(follower->port());
  ASSERT_TRUE(AwaitTrue([&] {
    auto stats = follower_client.Stats();
    return stats.ok() && stats.value().repl_applied_bytes > 0;
  })) << "follower never applied the bootstrap snapshot";
  const std::vector<double> qs = {0.25, 0.5, 0.99};
  for (int s = 0; s < 20; ++s) {
    const std::string name = "svc." + std::to_string(s);
    auto on_primary = client.Query(name, 0, 600, qs);
    auto on_follower = follower_client.Query(name, 0, 600, qs);
    ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
    ASSERT_TRUE(on_follower.ok()) << on_follower.status().ToString();
    EXPECT_EQ(on_primary.value(), on_follower.value()) << name;
  }
}

// ---------------------------------------------------------------------------
// Fencing discovered outside the FENCE-frame path (a SUBSCRIBE carrying
// a newer token, SketchServer::FenceSelf) must still flip the shipper:
// batches parked for subscriber acks release as FENCED, never OK — an
// OK would promise durability on a primary that just lost its lease.

TEST_F(ReplicationTest, ShipperFenceReleasesParkedAcksAsFenced) {
  const std::string dir = Dir("store");
  auto store = DurableSketchStore::Open(dir, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store.value().IngestValue("s", 0, 1.0).ok());
  std::mutex store_mu;

  ReplicationShipperOptions options;
  options.ack_timeout_ms = 60000;  // far beyond the test: only Fence()
                                   // may release the parked batch
  ReplicationShipper shipper({ReplShard{&store_mu, &store.value()}}, options,
                             /*on_fence=*/nullptr);
  shipper.Start();

  // A fake follower that subscribes and then never acks.
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  ASSERT_EQ(::fcntl(pair[0], F_SETFL, O_NONBLOCK), 0);
  shipper.AddSubscriber(pair[0], "", {});
  ASSERT_TRUE(AwaitTrue([&] { return shipper.subscribers() == 1; }));

  std::atomic<bool> released{false};
  std::atomic<bool> fenced{false};
  uint64_t epoch = 0;
  uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lk(store_mu);
    epoch = store.value().epoch();
    offset = store.value().wal_offset();
  }
  shipper.SubmitCommitted(0, epoch, offset, [&](bool f) {
    fenced.store(f);
    released.store(true);
  });
  // Parked: the only subscriber never acks.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_FALSE(released.load());

  shipper.Fence();
  ASSERT_TRUE(AwaitTrue([&] { return released.load(); }))
      << "Fence() did not release the parked completion";
  EXPECT_TRUE(fenced.load()) << "parked ack released as OK on a fenced "
                                "primary";
  shipper.Stop();
  ::close(pair[1]);
}

// ---------------------------------------------------------------------------
// Configuration guards: a follower role without a primary to follow is
// refused at startup, and SUBSCRIBE against a follower is refused (no
// chained replication).

TEST_F(ReplicationTest, FollowerRoleRequiresFollowTarget) {
  SketchServerOptions options;
  options.durable.role = StoreRole::kFollower;
  auto server = SketchServer::Start(Dir("orphan"), options);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ReplicationTest, SubscribeAgainstAFollowerIsRefused) {
  auto primary = MustStart(Dir("primary"));
  auto follower =
      MustStart(Dir("follower"), FollowerOptions(primary->port()));
  AwaitSubscribers(primary->port(), 1);

  auto fd = ConnectTcp("127.0.0.1", follower->port());
  ASSERT_TRUE(fd.ok());
  FramedConn conn(fd.value());
  ASSERT_TRUE(conn.SendHello().ok());
  ASSERT_TRUE(conn.ExpectHello().ok());
  Request subscribe;
  subscribe.op = Request::Op::kSubscribe;
  ASSERT_TRUE(conn.WriteFrame(EncodeRequest(subscribe)).ok());
  auto body = conn.ReadFrame();
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  auto response = DecodeResponse(body.value());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().code, StatusCode::kInvalidArgument);
  ::close(fd.value());
}

// ---------------------------------------------------------------------------
// Promote must be idempotent-safe: promoting an already-primary server
// still bumps the token (a fresh fencing point) and keeps it writable.

TEST_F(ReplicationTest, PromoteOnAPrimaryBumpsTheToken) {
  auto primary = MustStart(Dir("primary"));
  SketchClient client = MustConnect(primary->port());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  const uint64_t before = stats.value().fence_token;
  auto token = client.Promote();
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  EXPECT_GT(token.value(), before);
  ASSERT_TRUE(client.IngestValue("still.writable", 0, 1.0).ok());

  // The bumped token survives restart (it lives in the shard LOCK
  // files, not process memory).
  primary->Stop();
  primary.reset();
  auto reopened = MustStart(Dir("primary"));
  SketchClient reopened_client = MustConnect(reopened->port());
  auto after = reopened_client.Stats();
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after.value().fence_token, token.value());
}

}  // namespace
}  // namespace dd
