#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += (a.NextU64() == b.NextU64());
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(rng.NextU64());
  rng.Seed(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextU64(), first[i]);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenZeroNeverZero) {
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDoubleOpenZero();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_TRUE(std::isfinite(std::log(u)));
  }
}

TEST(RngTest, UniformityChiSquared) {
  // 64 bins, 640k samples: chi^2_{63} has mean 63, stddev ~11.2; a healthy
  // generator stays far below 150.
  Rng rng(5);
  constexpr int kBins = 64;
  constexpr int kSamples = 640000;
  std::vector<int> hist(kBins, 0);
  for (int i = 0; i < kSamples; ++i) {
    hist[static_cast<size_t>(rng.NextDouble() * kBins)]++;
  }
  const double expected = static_cast<double>(kSamples) / kBins;
  double chi2 = 0;
  for (int c : hist) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 150.0) << "chi2=" << chi2;
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(6);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedUnbiasedSmallBound) {
  Rng rng(11);
  constexpr uint64_t kBound = 6;
  constexpr int kSamples = 600000;
  std::vector<int> hist(kBound, 0);
  for (int i = 0; i < kSamples; ++i) hist[rng.NextBounded(kBound)]++;
  const double expected = static_cast<double>(kSamples) / kBound;
  for (uint64_t f = 0; f < kBound; ++f) {
    EXPECT_NEAR(hist[f], expected, 5 * std::sqrt(expected)) << "face " << f;
  }
}

TEST(RngTest, BitBalance) {
  // Each of the 64 output bits should be set about half the time.
  Rng rng(12);
  constexpr int kSamples = 100000;
  std::vector<int> ones(64, 0);
  for (int i = 0; i < kSamples; ++i) {
    uint64_t x = rng.NextU64();
    for (int b = 0; b < 64; ++b) ones[b] += (x >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(ones[b], kSamples / 2, 5 * std::sqrt(kSamples / 4.0))
        << "bit " << b;
  }
}

}  // namespace
}  // namespace dd
