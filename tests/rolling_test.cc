#include "core/rolling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <vector>

#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

RollingDDSketch Make(int intervals, double alpha = 0.01) {
  DDSketchConfig config;
  config.relative_accuracy = alpha;
  auto r = RollingDDSketch::Create(config, intervals);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(RollingTest, CreateValidation) {
  DDSketchConfig config;
  EXPECT_FALSE(RollingDDSketch::Create(config, 0).ok());
  EXPECT_FALSE(RollingDDSketch::Create(config, -3).ok());
  EXPECT_TRUE(RollingDDSketch::Create(config, 1).ok());
  config.relative_accuracy = 0.0;
  EXPECT_FALSE(RollingDDSketch::Create(config, 4).ok());
}

TEST(RollingTest, EmptyWindow) {
  RollingDDSketch w = Make(4);
  EXPECT_TRUE(w.empty());
  EXPECT_TRUE(std::isnan(w.QuantileOrNaN(0.5)));
  EXPECT_EQ(w.num_intervals(), 4);
}

TEST(RollingTest, SingleIntervalActsLikePlainSketch) {
  RollingDDSketch w = Make(1);
  auto plain = std::move(DDSketch::Create(0.01)).value();
  Rng rng(131);
  for (int i = 0; i < 10000; ++i) {
    const double x = std::exp(rng.NextDouble() * 5);
    w.Add(x);
    plain.Add(x);
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(w.QuantileOrNaN(q), plain.QuantileOrNaN(q)) << q;
  }
}

TEST(RollingTest, EvictionDropsOldIntervals) {
  RollingDDSketch w = Make(3);
  w.Add(1.0);   // interval 0
  w.Advance();
  w.Add(10.0);  // interval 1
  w.Advance();
  w.Add(100.0);  // interval 2
  EXPECT_EQ(w.count(), 3u);
  w.Advance();   // evicts interval with value 1.0
  w.Add(1000.0);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_GT(w.QuantileOrNaN(0.0), 5.0);  // 1.0 left the window
  w.Advance();   // evicts 10.0
  w.Advance();   // evicts 100.0
  EXPECT_EQ(w.count(), 1u);
  EXPECT_NEAR(w.QuantileOrNaN(0.5), 1000.0, 1000.0 * 0.011);
}

TEST(RollingTest, WindowMatchesManualMergeModel) {
  // Reference model: a deque of per-interval vectors.
  constexpr int kWindow = 5;
  RollingDDSketch w = Make(kWindow);
  std::deque<std::vector<double>> model;
  model.emplace_back();
  Rng rng(132);
  for (int step = 0; step < 40; ++step) {
    for (int i = 0; i < 500; ++i) {
      const double x = std::exp(rng.NextDouble() * 8 - 4);
      w.Add(x);
      model.back().push_back(x);
    }
    // Compare window quantiles against the exact union of live intervals.
    std::vector<double> window_values;
    for (const auto& interval : model) {
      window_values.insert(window_values.end(), interval.begin(),
                           interval.end());
    }
    ExactQuantiles truth(window_values);
    ASSERT_EQ(w.count(), window_values.size()) << "step " << step;
    for (double q : {0.25, 0.5, 0.9}) {
      EXPECT_LE(RelativeError(w.QuantileOrNaN(q), truth.Quantile(q)),
                0.01 * (1 + 1e-9))
          << "step " << step << " q=" << q;
    }
    w.Advance();
    model.emplace_back();
    if (model.size() > kWindow) model.pop_front();
  }
  EXPECT_EQ(w.intervals_advanced(), 40u);
}

TEST(RollingTest, MergeIntoCurrentAcceptsRemoteSketches) {
  RollingDDSketch w = Make(2);
  auto remote = std::move(DDSketch::Create(0.01)).value();
  for (int i = 0; i < 100; ++i) remote.Add(7.0);
  ASSERT_TRUE(w.MergeIntoCurrent(remote).ok());
  EXPECT_EQ(w.count(), 100u);
  EXPECT_EQ(w.current_interval_count(), 100u);
  // Incompatible remote is rejected.
  auto wrong = std::move(DDSketch::Create(0.05)).value();
  wrong.Add(1.0);
  EXPECT_EQ(w.MergeIntoCurrent(wrong).code(), StatusCode::kIncompatible);
}

TEST(RollingTest, RingSlotReuseAfterFullCycle) {
  RollingDDSketch w = Make(3);
  for (int cycle = 0; cycle < 10; ++cycle) {
    w.Add(static_cast<double>(cycle + 1));
    w.Advance();
  }
  // Window holds the last 2 completed intervals plus the fresh empty one.
  EXPECT_EQ(w.count(), 2u);
  EXPECT_EQ(w.intervals_advanced(), 10u);
}

TEST(RollingTest, WindowCacheRebuildsOnlyAfterMutation) {
  // Query cost regression: repeated quantile/CDF reads between
  // mutations must hit the cached merged window, not re-merge the ring
  // on every call.
  RollingDDSketch w = Make(4);
  for (int i = 1; i <= 100; ++i) w.Add(static_cast<double>(i));
  EXPECT_EQ(w.window_rebuilds(), 0u);
  for (int i = 0; i < 5; ++i) {
    (void)w.QuantileOrNaN(0.5);
    (void)w.CdfOrNaN(50.0);
  }
  EXPECT_EQ(w.window_rebuilds(), 1u);  // ten reads, one merge

  // Each kind of mutation invalidates exactly once.
  w.Add(101.0);
  (void)w.QuantileOrNaN(0.9);
  (void)w.QuantileOrNaN(0.99);
  EXPECT_EQ(w.window_rebuilds(), 2u);

  w.Advance();
  (void)w.CdfOrNaN(10.0);
  EXPECT_EQ(w.window_rebuilds(), 3u);

  auto remote = std::move(DDSketch::Create(0.01)).value();
  remote.Add(7.0);
  ASSERT_TRUE(w.MergeIntoCurrent(remote).ok());
  (void)w.QuantileOrNaN(0.5);
  EXPECT_EQ(w.window_rebuilds(), 4u);

  // A rejected merge changes nothing, so it must not invalidate.
  auto wrong = std::move(DDSketch::Create(0.05)).value();
  wrong.Add(1.0);
  EXPECT_EQ(w.MergeIntoCurrent(wrong).code(), StatusCode::kIncompatible);
  (void)w.QuantileOrNaN(0.5);
  EXPECT_EQ(w.window_rebuilds(), 4u);
}

TEST(RollingTest, CachedWindowAnswersMatchFreshMerge) {
  // The cache is an optimization, never an approximation: answers read
  // through it must be bit-identical to a twin that never caches — a
  // deque of per-interval sketches merged from scratch at every read.
  constexpr int kWindow = 5;
  RollingDDSketch w = Make(kWindow);
  std::deque<DDSketch> twin;
  twin.push_back(std::move(DDSketch::Create(0.01)).value());
  Rng rng(134);
  for (int step = 0; step < 20; ++step) {
    for (int i = 0; i < 300; ++i) {
      const double x = std::exp(rng.NextDouble() * 6 - 3);
      w.Add(x);
      twin.back().Add(x);
    }
    auto fresh = std::move(DDSketch::Create(0.01)).value();
    for (const DDSketch& interval : twin) {
      ASSERT_TRUE(fresh.MergeFrom(interval).ok());
    }
    for (double q : {0.1, 0.5, 0.9, 0.999}) {
      EXPECT_EQ(w.QuantileOrNaN(q), fresh.QuantileOrNaN(q))
          << "step " << step << " q=" << q;
    }
    for (double x : {0.5, 1.0, 5.0}) {
      EXPECT_EQ(w.CdfOrNaN(x), fresh.CdfOrNaN(x)) << "step " << step;
    }
    EXPECT_EQ(w.WindowSketch().count(), fresh.count()) << "step " << step;
    w.Advance();
    twin.push_back(std::move(DDSketch::Create(0.01)).value());
    if (twin.size() > kWindow) twin.pop_front();
  }
}

TEST(RollingTest, SizeAccountsAllIntervals) {
  RollingDDSketch w = Make(8);
  const size_t empty_size = w.size_in_bytes();
  Rng rng(133);
  for (int i = 0; i < 10000; ++i) {
    w.Add(std::exp(rng.NextDouble() * 10));
    if (i % 1000 == 0) w.Advance();
  }
  EXPECT_GT(w.size_in_bytes(), empty_size);
}

}  // namespace
}  // namespace dd
