// Property tests for the rollup ladder (timeseries/sketch_store.h):
//
//  * Resolution transparency — a store with a random multi-level ladder
//    answers QueryRange BIT-identically to an un-rolled single-level
//    reference fed the same points, for every window aligned to the
//    coarsest interval. Rollup moves data between tiers without ever
//    re-summarizing it: DDSketch merge adds integer bucket counts, and
//    every quantile/count answer is a pure function of those counts, so
//    coarse answers are not "approximately preserved" — they are the
//    same doubles to the last bit. (Whole-sketch serialized bytes are
//    NOT compared across different merge groupings: the sketch's `sum`
//    is a float accumulator, and float addition is grouping-sensitive.
//    Replicas still get byte-exact state because primary and follower
//    run the *same* fold schedule at the same epoch boundaries.)
//
//  * Schedule independence (the determinism invariant behind
//    checkpoint-time rollup) — the same raw multiset folds to the same
//    per-level bucket layout and counts no matter how many intermediate
//    Compact calls ran at which clocks, so every answer is identical.
//
//  * Snapshot round-trip — a randomly-laddered, partially-folded store
//    survives EncodeSnapshot/DecodeSnapshot byte-exactly.

#include "timeseries/sketch_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "timeseries/snapshot.h"
#include "util/rng.h"

namespace dd {
namespace {

struct LadderCase {
  std::vector<RollupLevel> levels;
  int64_t span;  // seconds of data time to generate
};

/// Draws a valid random ladder: 2-4 levels, each interval a small
/// multiple of the previous, retention a small multiple of the next
/// interval. `forever_tail` forces the last level to keep data forever
/// (needed when comparing against a reference that never drops).
LadderCase RandomLadder(Rng& rng, bool forever_tail) {
  LadderCase c;
  const size_t n = 2 + rng.NextBounded(3);
  int64_t interval = 1 + static_cast<int64_t>(rng.NextBounded(10));
  for (size_t i = 0; i < n; ++i) {
    RollupLevel level;
    level.interval_seconds = interval;
    const int64_t factor = 2 + static_cast<int64_t>(rng.NextBounded(5));
    const int64_t next = interval * factor;
    if (i + 1 < n) {
      // Must cover at least one coarse bucket.
      level.retention_seconds = next * (1 + static_cast<int64_t>(rng.NextBounded(4)));
    } else if (forever_tail || rng.NextBounded(2) == 0) {
      level.retention_seconds = 0;
    } else {
      level.retention_seconds =
          interval * (2 + static_cast<int64_t>(rng.NextBounded(6)));
    }
    c.levels.push_back(level);
    interval = next;
  }
  // Enough data time that every tier sees folds.
  c.span = c.levels.back().interval_seconds * 8;
  return c;
}

SketchStore MustCreate(const std::vector<RollupLevel>& levels) {
  SketchStoreOptions options;
  options.levels = levels;
  auto r = SketchStore::Create(options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// One random point: series from a small pool, timestamp in [0, span),
/// value in a range narrow enough that the sketch never collapses (so
/// merge order can never matter).
struct Point {
  std::string series;
  int64_t ts;
  double value;
};

std::vector<Point> RandomPoints(Rng& rng, int64_t span, size_t count) {
  std::vector<Point> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Point p;
    p.series = "s." + std::to_string(rng.NextBounded(3));
    p.ts = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(span)));
    p.value = std::exp(rng.NextDouble() * 6 - 3);  // (0.05, 20)
    points.push_back(p);
  }
  return points;
}

class RollupPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RollupPropertyTest, CoarseWindowsMatchUnrolledReferenceBitExactly) {
  Rng rng(GetParam() * 7919);
  const LadderCase c = RandomLadder(rng, /*forever_tail=*/true);
  SketchStore laddered = MustCreate(c.levels);
  SketchStore reference =
      MustCreate({{c.levels.front().interval_seconds, 0}});

  const auto points = RandomPoints(rng, c.span, 4000);
  for (const Point& p : points) {
    ASSERT_TRUE(laddered.IngestValue(p.series, p.ts, p.value).ok());
    ASSERT_TRUE(reference.IngestValue(p.series, p.ts, p.value).ok());
  }
  // Fold the ladder at a few random clocks, then saturate (what a
  // checkpoint runs). The reference is never compacted.
  for (int i = 0; i < 3; ++i) {
    laddered.Compact(static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(c.span) * 2)));
  }
  laddered.Compact(std::numeric_limits<int64_t>::max());

  // Every window aligned to the coarsest interval, over every series:
  // identical counts, identical quantiles to the last bit.
  const int64_t coarse = c.levels.back().interval_seconds;
  for (const std::string& name : reference.ListSeries()) {
    for (int64_t start = 0; start < c.span; start += coarse) {
      for (const int64_t end : {start + coarse, c.span}) {
        auto lhs = laddered.QueryRange(name, start, end);
        auto rhs = reference.QueryRange(name, start, end);
        ASSERT_TRUE(lhs.ok()) << lhs.status().ToString();
        ASSERT_TRUE(rhs.ok()) << rhs.status().ToString();
        ASSERT_EQ(lhs.value().count(), rhs.value().count())
            << name << " [" << start << "," << end << ")";
        EXPECT_EQ(lhs.value().min(), rhs.value().min());
        EXPECT_EQ(lhs.value().max(), rhs.value().max());
        for (double q = 0.01; q < 1.0; q += 0.03) {
          const double a = lhs.value().QuantileOrNaN(q);
          const double b = rhs.value().QuantileOrNaN(q);
          // Bitwise equality (NaN == NaN for empty windows).
          ASSERT_EQ(std::isnan(a), std::isnan(b)) << name << " q=" << q;
          if (!std::isnan(a)) {
            ASSERT_EQ(a, b) << name << " [" << start << "," << end
                            << ") q=" << q;
          }
        }
      }
    }
  }
}

TEST_P(RollupPropertyTest, FoldedStateIsScheduleIndependent) {
  Rng rng(GetParam() * 104729);
  const LadderCase c = RandomLadder(rng, /*forever_tail=*/false);
  SketchStore eager = MustCreate(c.levels);
  SketchStore lazy = MustCreate(c.levels);

  const auto points = RandomPoints(rng, c.span, 3000);
  // `eager` compacts repeatedly mid-ingest at whatever clock; `lazy`
  // folds exactly once at the end. Same multiset, same final state.
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    ASSERT_TRUE(eager.IngestValue(p.series, p.ts, p.value).ok());
    ASSERT_TRUE(lazy.IngestValue(p.series, p.ts, p.value).ok());
    if (i % 500 == 499) {
      eager.Compact(static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(c.span) * 2)));
    }
  }
  eager.Compact(std::numeric_limits<int64_t>::max());
  lazy.Compact(std::numeric_limits<int64_t>::max());

  // Identical per-level layout...
  EXPECT_EQ(eager.num_intervals(), lazy.num_intervals());
  const auto a = eager.LevelStats();
  const auto b = lazy.LevelStats();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].num_intervals, b[i].num_intervals) << "level " << i;
  }
  // ...and identical answers everywhere data survived retention.
  const int64_t coarse = c.levels.back().interval_seconds;
  for (const std::string& name : eager.ListSeries()) {
    for (int64_t start = 0; start < c.span; start += coarse) {
      auto lhs = eager.QueryRange(name, start, start + coarse);
      auto rhs = lazy.QueryRange(name, start, start + coarse);
      ASSERT_TRUE(lhs.ok()) << lhs.status().ToString();
      ASSERT_TRUE(rhs.ok()) << rhs.status().ToString();
      ASSERT_EQ(lhs.value().count(), rhs.value().count())
          << name << " @" << start;
      for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
        const double qa = lhs.value().QuantileOrNaN(q);
        const double qb = rhs.value().QuantileOrNaN(q);
        ASSERT_EQ(std::isnan(qa), std::isnan(qb)) << name << " q=" << q;
        if (!std::isnan(qa)) {
          ASSERT_EQ(qa, qb) << name << " q=" << q;
        }
      }
    }
  }
}

TEST_P(RollupPropertyTest, SnapshotRoundTripsRandomLadders) {
  Rng rng(GetParam() * 31337);
  const LadderCase c = RandomLadder(rng, /*forever_tail=*/false);
  SketchStore store = MustCreate(c.levels);
  for (const Point& p : RandomPoints(rng, c.span, 1500)) {
    ASSERT_TRUE(store.IngestValue(p.series, p.ts, p.value).ok());
  }
  // Partially folded: raw + coarse tiers both populated.
  store.Compact(c.span / 2);

  const std::string image = EncodeSnapshot(store, /*epoch=*/7);
  auto decoded = DecodeSnapshot(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().epoch, 7u);
  EXPECT_EQ(decoded.value().store.options().levels, c.levels);
  EXPECT_EQ(EncodeSnapshot(decoded.value().store, 7), image);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollupPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace dd
