#include "util/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace dd {
namespace {

TEST(RunningStatsTest, EmptyState) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.variance()));
  EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.max(), -std::numeric_limits<double>::infinity());
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NumericallyStableForShiftedData) {
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  RunningStats s;
  const double base = 1e9;
  for (double x : {base + 4.0, base + 7.0, base + 13.0, base + 16.0}) {
    s.Add(x);
  }
  EXPECT_NEAR(s.mean(), base + 10.0, 1e-6);
  EXPECT_NEAR(s.variance(), 22.5, 1e-6);
}

TEST(RunningStatsTest, MergeMatchesSingleAccumulator) {
  Rng rng(77);
  RunningStats whole, left, right;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble() * 100 - 50;
    whole.Add(x);
    (i % 3 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats a_copy = a;
  a.Merge(b);  // empty right
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  b.Merge(a_copy);  // empty left
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStatsTest, MergeIsAssociativeEnough) {
  Rng rng(78);
  std::vector<double> xs(3000);
  for (double& x : xs) x = rng.NextDouble() * 10;
  RunningStats abc, bc, a, b, c;
  for (size_t i = 0; i < xs.size(); ++i) {
    abc.Add(xs[i]);
    (i < 1000 ? a : (i < 2000 ? b : c)).Add(xs[i]);
  }
  bc = b;
  bc.Merge(c);
  a.Merge(bc);
  EXPECT_EQ(a.count(), abc.count());
  EXPECT_NEAR(a.mean(), abc.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), abc.variance(), 1e-8);
}

}  // namespace
}  // namespace dd
