#include <gtest/gtest.h>

#include <cmath>

#include "core/ddsketch.h"
#include "util/rng.h"

namespace dd {
namespace {

DDSketch MakeSketch(DDSketchConfig config = {}) {
  auto r = DDSketch::Create(config);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void ExpectEquivalent(const DDSketch& a, const DDSketch& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.zero_count(), b.zero_count());
  EXPECT_EQ(a.rejected_count(), b.rejected_count());
  EXPECT_EQ(a.clamped_count(), b.clamped_count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.num_buckets(), b.num_buckets());
  if (!a.empty()) {
    for (double q = 0.0; q <= 1.0; q += 0.01) {
      EXPECT_DOUBLE_EQ(a.QuantileOrNaN(q), b.QuantileOrNaN(q)) << q;
    }
  }
}

TEST(SerializationTest, EmptySketchRoundTrip) {
  DDSketch s = MakeSketch();
  auto decoded = DDSketch::Deserialize(s.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectEquivalent(s, decoded.value());
}

TEST(SerializationTest, PopulatedRoundTrip) {
  DDSketch s = MakeSketch();
  Rng rng(51);
  for (int i = 0; i < 20000; ++i) {
    s.Add(std::exp(rng.NextDouble() * 20 - 10));
  }
  s.Add(0.0, 17);
  for (int i = 0; i < 500; ++i) s.Add(-std::exp(rng.NextDouble() * 5));
  s.Add(std::nan(""));  // rejected counter must survive
  const std::string payload = s.Serialize();
  auto decoded = DDSketch::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectEquivalent(s, decoded.value());
}

TEST(SerializationTest, AllMappingAndStoreCombinations) {
  for (MappingType mapping :
       {MappingType::kLogarithmic, MappingType::kLinearInterpolated,
        MappingType::kQuadraticInterpolated,
        MappingType::kCubicInterpolated}) {
    for (StoreType store :
         {StoreType::kUnboundedDense, StoreType::kCollapsingLowestDense,
          StoreType::kSparse}) {
      DDSketchConfig config;
      config.mapping = mapping;
      config.store = store;
      config.max_num_buckets =
          store == StoreType::kUnboundedDense ? 0 : 1024;
      DDSketch s = MakeSketch(config);
      Rng rng(52);
      for (int i = 0; i < 2000; ++i) s.Add(rng.NextDoubleOpenZero() * 1e6);
      auto decoded = DDSketch::Deserialize(s.Serialize());
      ASSERT_TRUE(decoded.ok())
          << MappingTypeToString(mapping) << "/" << StoreTypeToString(store)
          << ": " << decoded.status().ToString();
      ExpectEquivalent(s, decoded.value());
      EXPECT_EQ(decoded.value().mapping().type(), mapping);
    }
  }
}

TEST(SerializationTest, DecodedSketchRemainsUsable) {
  DDSketch s = MakeSketch();
  for (int i = 1; i <= 1000; ++i) s.Add(static_cast<double>(i));
  auto decoded = DDSketch::Deserialize(s.Serialize());
  ASSERT_TRUE(decoded.ok());
  DDSketch revived = std::move(decoded).value();
  for (int i = 1001; i <= 2000; ++i) revived.Add(static_cast<double>(i));
  EXPECT_EQ(revived.count(), 2000u);
  EXPECT_NEAR(revived.QuantileOrNaN(0.5), 1000.0, 1000.0 * 0.011);
  // And it merges with the original.
  ASSERT_TRUE(revived.MergeFrom(s).ok());
  EXPECT_EQ(revived.count(), 3000u);
}

TEST(SerializationTest, PayloadIsCompact) {
  DDSketch s = MakeSketch();
  Rng rng(53);
  for (int i = 0; i < 100000; ++i) {
    s.Add(std::exp(rng.NextDouble() * 10));
  }
  // A few hundred non-empty buckets: varint-delta encoding should stay
  // within a few bytes per bucket.
  const std::string payload = s.Serialize();
  EXPECT_LT(payload.size(), s.num_buckets() * 8 + 128);
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DDSketch::Deserialize("").ok());
  EXPECT_FALSE(DDSketch::Deserialize("garbage").ok());
  EXPECT_FALSE(DDSketch::Deserialize("DDSKxxxxxxxxxxxxxxxxxxx").ok());
}

TEST(SerializationTest, RejectsEveryTruncation) {
  DDSketch s = MakeSketch();
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  const std::string payload = s.Serialize();
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto r = DDSketch::Deserialize(payload.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << "cut=" << cut;
  }
}

TEST(SerializationTest, RejectsTrailingBytes) {
  DDSketch s = MakeSketch();
  s.Add(1.0);
  auto r = DDSketch::Deserialize(s.Serialize() + "extra");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(SerializationTest, RejectsBadTags) {
  DDSketch s = MakeSketch();
  s.Add(1.0);
  std::string payload = s.Serialize();
  {
    std::string bad = payload;
    bad[4] = 99;  // version
    EXPECT_FALSE(DDSketch::Deserialize(bad).ok());
  }
  {
    std::string bad = payload;
    bad[5] = 17;  // mapping tag
    EXPECT_FALSE(DDSketch::Deserialize(bad).ok());
  }
}

TEST(SerializationTest, MergeOfDecodedSketchesMatchesDirectMerge) {
  // The paper's deployment: workers serialize sketches, the aggregator
  // decodes and merges. Result must equal an in-process merge.
  DDSketch worker1 = MakeSketch(), worker2 = MakeSketch();
  Rng rng(54);
  for (int i = 0; i < 5000; ++i) {
    worker1.Add(rng.NextDoubleOpenZero() * 100);
    worker2.Add(std::exp(rng.NextDouble() * 8));
  }
  DDSketch direct = worker1;
  ASSERT_TRUE(direct.MergeFrom(worker2).ok());

  auto d1 = DDSketch::Deserialize(worker1.Serialize());
  auto d2 = DDSketch::Deserialize(worker2.Serialize());
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  DDSketch via_wire = std::move(d1).value();
  ASSERT_TRUE(via_wire.MergeFrom(d2.value()).ok());
  ExpectEquivalent(direct, via_wire);
}

}  // namespace
}  // namespace dd
