// End-to-end tests for the sketchd serving core (server/server.h) over
// real loopback sockets: protocol round trips through SketchClient,
// concurrent ingest, the group-commit fsync guarantee, error
// propagation, and recovery of everything acknowledged over the wire.

#include "server/server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/ddsketch.h"
#include "server/client.h"
#include "timeseries/durable_store.h"
#include "util/file_io.h"

namespace dd {
namespace {

namespace fs = std::filesystem;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("dd_server_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  static std::unique_ptr<SketchServer> MustStart(
      const std::string& dir, const SketchServerOptions& options = {}) {
    auto server = SketchServer::Start(dir, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  static SketchClient MustConnect(const SketchServer& server) {
    auto client = SketchClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  fs::path root_;
};

TEST_F(ServerTest, StartsOnEphemeralPortAndStops) {
  auto server = MustStart(Dir("basic"));
  EXPECT_GT(server->port(), 0);
  SketchClient client = MustConnect(*server);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_series, 0u);
  EXPECT_EQ(stats.value().epoch, 1u);
  server->Stop();
  // Stop() released the data-dir lock: a direct open must succeed.
  auto reopened = DurableSketchStore::Open(Dir("basic"), {});
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
}

TEST_F(ServerTest, IngestAndQueryMatchInProcessReference) {
  auto server = MustStart(Dir("roundtrip"));
  SketchClient client = MustConnect(*server);
  auto ref = std::move(SketchStore::Create(SketchStoreOptions{})).value();
  for (int i = 0; i < 500; ++i) {
    const double value = 1.0 + (i % 97) * 0.5;
    const int64_t ts = (i % 40) * 10;
    ASSERT_TRUE(client.IngestValue("api.latency", ts, value).ok());
    ASSERT_TRUE(ref.IngestValue("api.latency", ts, value).ok());
  }
  const std::vector<double> qs = {0.1, 0.5, 0.95, 0.99};
  auto remote = client.Query("api.latency", 0, 400, qs);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote.value().size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(remote.value()[i],
              std::move(ref.QueryQuantile("api.latency", 0, 400, qs[i])).value())
        << "q=" << qs[i];
  }
}

TEST_F(ServerTest, MergeShipsWorkerSketches) {
  auto server = MustStart(Dir("merge"));
  SketchClient client = MustConnect(*server);
  auto worker = std::move(DDSketch::Create(DDSketchConfig{})).value();
  for (int i = 1; i <= 100; ++i) worker.Add(static_cast<double>(i));
  ASSERT_TRUE(client.Merge("svc", 50, worker.Serialize()).ok());
  auto remote = client.Query("svc", 0, 100, {0.5});
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  // Same data, same parameters: the server-side interval sketch is the
  // worker sketch, so the quantile matches exactly.
  EXPECT_EQ(remote.value()[0], std::move(worker.Quantile(0.5)).value());
}

TEST_F(ServerTest, ServerSideErrorsReachTheClientAsStatuses) {
  auto server = MustStart(Dir("errors"));
  SketchClient client = MustConnect(*server);
  // Unknown series.
  auto query = client.Query("nope", 0, 100, {0.5});
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
  // Garbage merge payload.
  EXPECT_EQ(client.Merge("svc", 0, "garbage").code(), StatusCode::kCorruption);
  // Parameter-incompatible worker sketch.
  auto wrong = std::move(DDSketch::Create(0.05)).value();
  wrong.Add(1.0);
  EXPECT_EQ(client.Merge("svc", 0, wrong.Serialize()).code(),
            StatusCode::kIncompatible);
  // The rejected requests must not have reached the WAL.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().num_series, 0u);
}

TEST_F(ServerTest, ConcurrentIngestBatchesIntoOneFsync) {
  // With a huge commit interval and commit_batch == K, K concurrent
  // ingests must be staged together and committed with exactly one
  // fsync (the committer proceeds as soon as the batch fills).
  constexpr size_t kClients = 8;
  SketchServerOptions options;
  options.commit_batch = kClients;
  options.commit_interval_us = 5 * 1000 * 1000;
  auto server = MustStart(Dir("groupcommit"), options);

  std::vector<SketchClient> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.push_back(MustConnect(*server));
  }
  const uint64_t fsyncs_before = TotalFsyncCount();
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&clients, i] {
      EXPECT_TRUE(clients[i]
                      .IngestValue("svc", 0, 1.0 + static_cast<double>(i))
                      .ok());
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t fsyncs_after = TotalFsyncCount();
  EXPECT_EQ(fsyncs_after - fsyncs_before, 1u);
  EXPECT_EQ(server->batch_commits(), 1u);

  auto count = clients[0].Query("svc", 0, 10, {0.5});
  ASSERT_TRUE(count.ok());
  auto stats = clients[0].Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().batch_commits, 1u);
}

TEST_F(ServerTest, PipelinedIngestLandsEveryValue) {
  SketchServerOptions options;
  options.commit_batch = 64;
  auto server = MustStart(Dir("pipeline"), options);
  SketchClient client = MustConnect(*server);
  std::vector<std::pair<int64_t, double>> points;
  for (int i = 0; i < 2000; ++i) {
    points.emplace_back(i % 50, 1.0 + i * 0.25);
  }
  ASSERT_TRUE(client.IngestValues("bulk", points).ok());
  auto merged = client.Query("bulk", 0, 50, {0.5});
  ASSERT_TRUE(merged.ok());
  // Pipelining must have produced real batches, not 2000 solo commits.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats.value().batch_commits, 2000u);
  server->Stop();
  // Every acknowledged value must be recovered by a direct reopen.
  auto reopened = DurableSketchStore::Open(Dir("pipeline"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(
      std::move(reopened.value().QueryRange("bulk", 0, 50)).value().count(),
      2000u);
}

TEST_F(ServerTest, ConcurrentClientsAllRecoverAfterStop) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 200;
  SketchServerOptions options;
  options.commit_batch = 32;
  auto server = MustStart(Dir("concurrent"), options);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t] {
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(client.value()
                        .IngestValue("series." + std::to_string(t), i % 100,
                                     1.0 + i)
                        .ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server->Stop();
  auto reopened = DurableSketchStore::Open(Dir("concurrent"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().store().num_series(),
            static_cast<size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(std::move(reopened.value().QueryRange(
                            "series." + std::to_string(t), 0, 100))
                  .value()
                  .count(),
              static_cast<uint64_t>(kPerThread));
  }
}

TEST_F(ServerTest, CheckpointOverTheWire) {
  auto server = MustStart(Dir("checkpoint"));
  SketchClient client = MustConnect(*server);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.IngestValue("svc", i, 1.0 + i).ok());
  }
  auto epoch = client.Checkpoint();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(epoch.value(), 2u);
  // Post-checkpoint ingests land in the fresh log.
  ASSERT_TRUE(client.IngestValue("svc", 500, 9.0).ok());
  server->Stop();
  auto reopened = DurableSketchStore::Open(Dir("checkpoint"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().epoch(), 2u);
  EXPECT_EQ(
      std::move(reopened.value().QueryRange("svc", 0, 600)).value().count(),
      51u);
}

TEST_F(ServerTest, SecondServerOnSameDirIsLockedOut) {
  auto server = MustStart(Dir("locked"));
  auto second = SketchServer::Start(Dir("locked"), {});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServerTest, RejectsZeroCommitBatch) {
  SketchServerOptions options;
  options.commit_batch = 0;
  auto server = SketchServer::Start(Dir("zero"), options);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dd
