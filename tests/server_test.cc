// End-to-end tests for the sketchd serving core (server/server.h) over
// real loopback sockets: protocol round trips through SketchClient,
// concurrent ingest, the group-commit fsync guarantee, error
// propagation, and recovery of everything acknowledged over the wire.

#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/ddsketch.h"
#include "server/client.h"
#include "server/net.h"
#include "timeseries/durable_store.h"
#include "timeseries/sharded_store.h"
#include "util/file_io.h"

namespace dd {
namespace {

namespace fs = std::filesystem;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("dd_server_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  static std::unique_ptr<SketchServer> MustStart(
      const std::string& dir, const SketchServerOptions& options = {}) {
    auto server = SketchServer::Start(dir, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  static SketchClient MustConnect(const SketchServer& server) {
    auto client = SketchClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  fs::path root_;
};

TEST_F(ServerTest, StartsOnEphemeralPortAndStops) {
  auto server = MustStart(Dir("basic"));
  EXPECT_GT(server->port(), 0);
  SketchClient client = MustConnect(*server);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_series, 0u);
  EXPECT_EQ(stats.value().epoch, 1u);
  server->Stop();
  // Stop() released the data-dir lock: a direct open must succeed.
  auto reopened = DurableSketchStore::Open(Dir("basic"), {});
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
}

TEST_F(ServerTest, IngestAndQueryMatchInProcessReference) {
  auto server = MustStart(Dir("roundtrip"));
  SketchClient client = MustConnect(*server);
  auto ref = std::move(SketchStore::Create(SketchStoreOptions{})).value();
  for (int i = 0; i < 500; ++i) {
    const double value = 1.0 + (i % 97) * 0.5;
    const int64_t ts = (i % 40) * 10;
    ASSERT_TRUE(client.IngestValue("api.latency", ts, value).ok());
    ASSERT_TRUE(ref.IngestValue("api.latency", ts, value).ok());
  }
  const std::vector<double> qs = {0.1, 0.5, 0.95, 0.99};
  auto remote = client.Query("api.latency", 0, 400, qs);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote.value().size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(remote.value()[i],
              std::move(ref.QueryQuantile("api.latency", 0, 400, qs[i])).value())
        << "q=" << qs[i];
  }
}

TEST_F(ServerTest, MergeShipsWorkerSketches) {
  auto server = MustStart(Dir("merge"));
  SketchClient client = MustConnect(*server);
  auto worker = std::move(DDSketch::Create(DDSketchConfig{})).value();
  for (int i = 1; i <= 100; ++i) worker.Add(static_cast<double>(i));
  ASSERT_TRUE(client.Merge("svc", 50, worker.Serialize()).ok());
  auto remote = client.Query("svc", 0, 100, {0.5});
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  // Same data, same parameters: the server-side interval sketch is the
  // worker sketch, so the quantile matches exactly.
  EXPECT_EQ(remote.value()[0], std::move(worker.Quantile(0.5)).value());
}

TEST_F(ServerTest, ServerSideErrorsReachTheClientAsStatuses) {
  auto server = MustStart(Dir("errors"));
  SketchClient client = MustConnect(*server);
  // Unknown series.
  auto query = client.Query("nope", 0, 100, {0.5});
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
  // Garbage merge payload.
  EXPECT_EQ(client.Merge("svc", 0, "garbage").code(), StatusCode::kCorruption);
  // Parameter-incompatible worker sketch.
  auto wrong = std::move(DDSketch::Create(0.05)).value();
  wrong.Add(1.0);
  EXPECT_EQ(client.Merge("svc", 0, wrong.Serialize()).code(),
            StatusCode::kIncompatible);
  // The rejected requests must not have reached the WAL.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().num_series, 0u);
}

TEST_F(ServerTest, ConcurrentIngestBatchesIntoOneFsync) {
  // With a huge commit interval and commit_batch == K, K concurrent
  // ingests must be staged together and committed with exactly one
  // fsync (the committer proceeds as soon as the batch fills).
  constexpr size_t kClients = 8;
  SketchServerOptions options;
  options.commit_batch = kClients;
  options.commit_interval_us = 5 * 1000 * 1000;
  auto server = MustStart(Dir("groupcommit"), options);

  std::vector<SketchClient> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.push_back(MustConnect(*server));
  }
  const uint64_t fsyncs_before = TotalFsyncCount();
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&clients, i] {
      EXPECT_TRUE(clients[i]
                      .IngestValue("svc", 0, 1.0 + static_cast<double>(i))
                      .ok());
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t fsyncs_after = TotalFsyncCount();
  EXPECT_EQ(fsyncs_after - fsyncs_before, 1u);
  EXPECT_EQ(server->batch_commits(), 1u);

  auto count = clients[0].Query("svc", 0, 10, {0.5});
  ASSERT_TRUE(count.ok());
  auto stats = clients[0].Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().batch_commits, 1u);
}

TEST_F(ServerTest, PipelinedIngestLandsEveryValue) {
  SketchServerOptions options;
  options.commit_batch = 64;
  auto server = MustStart(Dir("pipeline"), options);
  SketchClient client = MustConnect(*server);
  std::vector<std::pair<int64_t, double>> points;
  for (int i = 0; i < 2000; ++i) {
    points.emplace_back(i % 50, 1.0 + i * 0.25);
  }
  ASSERT_TRUE(client.IngestValues("bulk", points).ok());
  auto merged = client.Query("bulk", 0, 50, {0.5});
  ASSERT_TRUE(merged.ok());
  // Pipelining must have produced real batches, not 2000 solo commits.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats.value().batch_commits, 2000u);
  server->Stop();
  // Every acknowledged value must be recovered by a direct reopen.
  auto reopened = DurableSketchStore::Open(Dir("pipeline"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(
      std::move(reopened.value().QueryRange("bulk", 0, 50)).value().count(),
      2000u);
}

TEST_F(ServerTest, ConcurrentClientsAllRecoverAfterStop) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 200;
  SketchServerOptions options;
  options.commit_batch = 32;
  auto server = MustStart(Dir("concurrent"), options);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t] {
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(client.value()
                        .IngestValue("series." + std::to_string(t), i % 100,
                                     1.0 + i)
                        .ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server->Stop();
  auto reopened = DurableSketchStore::Open(Dir("concurrent"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().store().num_series(),
            static_cast<size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(std::move(reopened.value().QueryRange(
                            "series." + std::to_string(t), 0, 100))
                  .value()
                  .count(),
              static_cast<uint64_t>(kPerThread));
  }
}

TEST_F(ServerTest, CheckpointOverTheWire) {
  auto server = MustStart(Dir("checkpoint"));
  SketchClient client = MustConnect(*server);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.IngestValue("svc", i, 1.0 + i).ok());
  }
  auto epoch = client.Checkpoint();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(epoch.value(), 2u);
  // Post-checkpoint ingests land in the fresh log.
  ASSERT_TRUE(client.IngestValue("svc", 500, 9.0).ok());
  server->Stop();
  auto reopened = DurableSketchStore::Open(Dir("checkpoint"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().epoch(), 2u);
  EXPECT_EQ(
      std::move(reopened.value().QueryRange("svc", 0, 600)).value().count(),
      51u);
}

TEST_F(ServerTest, CompactOverTheWireFoldsAndPreservesAnswers) {
  // v6: COMPACT ages the rollup ladder through the normal checkpoint
  // path. Folding moves data between tiers without changing a single
  // answer, bumps the epoch (rollup state persists only via snapshots),
  // and the folded layout survives a restart.
  SketchServerOptions options;
  options.durable.store.levels = {{10, 120}, {60, 0}};
  auto server = MustStart(Dir("compact"), options);
  SketchClient client = MustConnect(*server);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        client.IngestValue("svc", i * 5, 1.0 + (i % 53) * 0.5).ok());
  }
  // Windows aligned to the coarse interval (60s): raw and rolled-up
  // tiers tile them identically, so answers must match bit-for-bit.
  const std::vector<double> qs = {0.1, 0.5, 0.99};
  std::vector<std::pair<int64_t, int64_t>> windows = {
      {0, 600}, {600, 1200}, {1200, 1800}, {0, 2400}};
  std::vector<std::vector<double>> before;
  for (const auto& w : windows) {
    auto q = client.Query("svc", w.first, w.second, qs);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    before.push_back(q.value());
  }

  auto compacted = client.Compact(std::numeric_limits<int64_t>::max());
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_GT(compacted.value(), 0u);

  for (size_t i = 0; i < windows.size(); ++i) {
    auto q = client.Query("svc", windows[i].first, windows[i].second, qs);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q.value(), before[i]) << "window " << i;
  }

  // STATS now carries one row per ladder level, finest first, with the
  // fold visible in the coarse level's merge counter.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().epoch, 2u);  // COMPACT checkpoints
  ASSERT_EQ(stats.value().levels.size(), 2u);
  EXPECT_EQ(stats.value().levels[0].interval_seconds, 10u);
  EXPECT_EQ(stats.value().levels[0].retention_seconds, 120u);
  EXPECT_EQ(stats.value().levels[1].interval_seconds, 60u);
  EXPECT_EQ(stats.value().levels[1].retention_seconds, 0u);
  EXPECT_GT(stats.value().levels[1].num_intervals, 0u);
  EXPECT_GT(stats.value().levels[1].rollup_merges, 0u);
  const uint64_t total = stats.value().levels[0].num_intervals +
                         stats.value().levels[1].num_intervals;
  EXPECT_EQ(total, stats.value().num_intervals);

  // The folded layout is snapshot state: a plain reopen sees it.
  server->Stop();
  DurableSketchStoreOptions reopen_options;
  reopen_options.store.levels = {{10, 120}, {60, 0}};
  auto reopened = DurableSketchStore::Open(Dir("compact"), reopen_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT(reopened.value().store().LevelStats()[1].num_intervals, 0u);
  auto range = reopened.value().QueryRange("svc", 0, 2400);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range.value().count(), 400u);
}

TEST_F(ServerTest, ShardedServerMatchesReferenceAndRecovers) {
  SketchServerOptions options;
  options.shards = 4;
  auto server = MustStart(Dir("sharded"), options);
  EXPECT_EQ(server->num_shards(), 4u);
  SketchClient client = MustConnect(*server);
  auto ref = std::move(SketchStore::Create(SketchStoreOptions{})).value();
  std::vector<std::string> series;
  for (int s = 0; s < 8; ++s) series.push_back("svc." + std::to_string(s));
  for (int i = 0; i < 800; ++i) {
    const std::string& name = series[i % series.size()];
    const double value = 1.0 + ((i * 7) % 101) * 0.25;
    const int64_t ts = (i % 30) * 10;
    ASSERT_TRUE(client.IngestValue(name, ts, value).ok());
    ASSERT_TRUE(ref.IngestValue(name, ts, value).ok());
  }
  // Cross-shard quantiles are exact w.r.t. the unsharded reference.
  for (const std::string& name : series) {
    auto remote = client.Query(name, 0, 300, {0.5, 0.99});
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote.value()[0],
              std::move(ref.QueryQuantile(name, 0, 300, 0.5)).value());
    EXPECT_EQ(remote.value()[1],
              std::move(ref.QueryQuantile(name, 0, 300, 0.99)).value());
  }
  // STATS carries one row per shard, and the series are actually spread.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().shards.size(), 4u);
  uint64_t series_total = 0;
  int shards_with_data = 0;
  uint64_t wal_total = 0;
  for (const ShardStats& row : stats.value().shards) {
    series_total += row.num_series;
    wal_total += row.wal_bytes;
    if (row.num_series > 0) ++shards_with_data;
    EXPECT_EQ(row.epoch, 1u);
  }
  EXPECT_EQ(series_total, series.size());
  EXPECT_EQ(stats.value().num_series, series.size());
  EXPECT_EQ(stats.value().wal_offset, wal_total);
  EXPECT_GE(shards_with_data, 2);
  server->Stop();
  // The directory reopens by auto-detection with everything recovered.
  auto reopened = ShardedDurableStore::Open(Dir("sharded"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_shards(), 4u);
  EXPECT_EQ(reopened.value().TotalSeries(), series.size());
  EXPECT_EQ(
      std::move(reopened.value().QueryRange(series[0], 0, 300)).value().count(),
      100u);
}

TEST_F(ServerTest, ShardedCheckpointCoversEveryShard) {
  SketchServerOptions options;
  options.shards = 3;
  auto server = MustStart(Dir("ckpt3"), options);
  SketchClient client = MustConnect(*server);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        client.IngestValue("series." + std::to_string(i), 0, 1.0 + i).ok());
  }
  auto epoch = client.Checkpoint();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(epoch.value(), 2u);  // the minimum across shards
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().shards.size(), 3u);
  for (const ShardStats& row : stats.value().shards) {
    EXPECT_EQ(row.epoch, 2u) << "shard " << row.shard;
    EXPECT_EQ(row.background_checkpoints, 0u);  // client-driven, not bg
  }
}

/// Polls STATS until `done(stats)` or ~5 s elapse; returns the last
/// snapshot either way.
template <typename Pred>
StoreStats AwaitStats(SketchClient* client, Pred done) {
  StoreStats last;
  for (int i = 0; i < 200; ++i) {
    auto stats = client->Stats();
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    last = std::move(stats).value();
    if (done(last)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return last;
}

TEST_F(ServerTest, BackgroundCheckpointFiresOnWalSize) {
  SketchServerOptions options;
  options.shards = 2;
  options.checkpoint_wal_bytes = 256;
  auto server = MustStart(Dir("bgsize"), options);
  SketchClient client = MustConnect(*server);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.IngestValue("hot", i % 20, 1.0 + i).ok());
  }
  // No client CHECKPOINT is ever sent: the epoch advance must come from
  // the scheduler noticing the hot shard's WAL size. Wait for the
  // quiescent state — a checkpoint has fired AND every WAL is back
  // under the trigger — rather than the first bg > 0 snapshot, which
  // can race with a mid-ingest checkpoint followed by a WAL refill.
  const StoreStats stats = AwaitStats(&client, [](const StoreStats& s) {
    if (s.background_checkpoints == 0) return false;
    for (const ShardStats& row : s.shards) {
      if (row.wal_bytes >= 256u + 13u) return false;
    }
    return true;
  });
  EXPECT_GE(stats.background_checkpoints, 1u);
  int advanced = 0;
  for (const ShardStats& row : stats.shards) {
    if (row.epoch >= 2) ++advanced;
    // Quiescent: the scheduler has drained every over-budget log.
    EXPECT_LT(row.wal_bytes, 256u + 13u) << "shard " << row.shard;
  }
  EXPECT_GE(advanced, 1);
  // And the data survived the snapshot + reset.
  auto quantile = client.Query("hot", 0, 100, {0.5});
  ASSERT_TRUE(quantile.ok()) << quantile.status().ToString();
  server->Stop();
  auto reopened = ShardedDurableStore::Open(Dir("bgsize"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(
      std::move(reopened.value().QueryRange("hot", 0, 200)).value().count(),
      100u);
}

TEST_F(ServerTest, BackgroundCheckpointFiresOnInterval) {
  SketchServerOptions options;
  options.checkpoint_interval_ms = 50;  // sketchd exposes whole seconds
  auto server = MustStart(Dir("bgtime"), options);
  SketchClient client = MustConnect(*server);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.IngestValue("svc", 0, 1.0 + i).ok());
  }
  const StoreStats stats = AwaitStats(
      &client, [](const StoreStats& s) { return s.epoch >= 2; });
  EXPECT_GE(stats.epoch, 2u);
  EXPECT_GE(stats.background_checkpoints, 1u);
}

TEST_F(ServerTest, AggressiveCheckpointsDoNotBlockOrLoseConcurrentIngest) {
  // Both triggers at their most aggressive on 4 shards: every poll
  // checkpoints some shard while every shard is ingesting. Nothing may
  // stall, fail, or be lost — checkpoints hold only their own shard's
  // lock, so ingest on the other shards proceeds concurrently.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  SketchServerOptions options;
  options.shards = 4;
  options.checkpoint_wal_bytes = 1;
  options.checkpoint_interval_ms = 10;
  auto server = MustStart(Dir("bgstorm"), options);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t] {
      auto client = SketchClient::Connect("127.0.0.1", server->port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(client.value()
                        .IngestValue("storm." + std::to_string(t), i % 100,
                                     1.0 + i)
                        .ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(server->background_checkpoints(), 1u);
  server->Stop();
  auto reopened = ShardedDurableStore::Open(Dir("bgstorm"), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(std::move(reopened.value().QueryRange(
                            "storm." + std::to_string(t), 0, 100))
                  .value()
                  .count(),
              static_cast<uint64_t>(kPerThread));
  }
}

TEST_F(ServerTest, SecondServerOnSameDirIsLockedOut) {
  auto server = MustStart(Dir("locked"));
  auto second = SketchServer::Start(Dir("locked"), {});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServerTest, RejectsZeroCommitBatch) {
  SketchServerOptions options;
  options.commit_batch = 0;
  auto server = SketchServer::Start(Dir("zero"), options);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

// Regression for the accept-thread design's shutdown sweep race: a
// connection accepted after Stop() swept conn_fds_ but before the
// listener closed was owned by no one — its thread was never shut down
// or joined. The event loop closes the hole by construction (every
// accepted fd is owned by exactly one loop, and loops drain their
// adoption queues before exiting), which this pins down by hammering
// Stop() with a concurrent connect storm: no hang, no crash, and every
// pre-stop ack must survive.
TEST_F(ServerTest, StopDuringConnectStormNeverLeaksOrHangs) {
  for (int round = 0; round < 5; ++round) {
    const std::string dir = Dir("storm_stop" + std::to_string(round));
    auto server = MustStart(dir);
    const uint16_t port = server->port();

    SketchClient client = MustConnect(*server);
    ASSERT_TRUE(client.IngestValue("pre.stop", round, 1.0).ok());

    std::atomic<bool> done{false};
    std::thread storm([&] {
      // Race connects against Stop(): some land before the listener
      // closes (the event loop must adopt and then shed them), some
      // after (refused). Both are fine; leaking either is not.
      while (!done.load(std::memory_order_relaxed)) {
        auto fd = ConnectTcp("127.0.0.1", port);
        if (fd.ok()) ::close(fd.value());
      }
    });
    server->Stop();  // must not hang, whatever the storm landed
    done.store(true, std::memory_order_relaxed);
    storm.join();

    auto reopened = DurableSketchStore::Open(dir, {});
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(std::move(reopened.value().QueryRange("pre.stop", 0, 100))
                  .value()
                  .count(),
              1.0);
  }
}

TEST_F(ServerTest, StatsReportServingCounters) {
  SketchServerOptions options;
  options.event_loops = 2;
  auto server = MustStart(Dir("counters"), options);
  EXPECT_EQ(server->num_event_loops(), 2u);
  SketchClient a = MustConnect(*server);
  SketchClient b = MustConnect(*server);
  ASSERT_TRUE(a.IngestValue("svc", 1, 1.0).ok());
  auto stats = b.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().connections_accepted, 2u);
  EXPECT_GE(stats.value().connections_open, 2u);
  EXPECT_EQ(stats.value().busy_rejections, 0u);
  EXPECT_EQ(stats.value().staged_bytes, 0u);  // all committed by now
}

TEST_F(ServerTest, StatsReportPerOpAckLatency) {
  // v4 self-instrumentation: every acked request lands in exactly one
  // per-op latency row, so with a single client the row counts must
  // equal the number of requests issued, and each populated row's
  // percentiles must be ordered.
  SketchServerOptions options;
  options.event_loops = 2;  // rows merge across loops
  auto server = MustStart(Dir("oplat"), options);
  SketchClient client = MustConnect(*server);

  constexpr uint64_t kIngests = 300;
  constexpr uint64_t kQueries = 7;
  for (uint64_t i = 0; i < kIngests; ++i) {
    ASSERT_TRUE(
        client.IngestValue("svc", static_cast<int64_t>(i % 20), 1.0 + i).ok());
  }
  for (uint64_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client.Query("svc", 0, 100, {0.5}).ok());
  }
  auto worker = std::move(DDSketch::Create(DDSketchConfig{})).value();
  worker.Add(3.0);
  ASSERT_TRUE(client.Merge("svc", 0, worker.Serialize()).ok());
  ASSERT_TRUE(client.Checkpoint().ok());
  ASSERT_TRUE(client.Stats().ok());  // now a STATS ack latency exists

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const auto& rows = stats.value().op_latencies;
  auto row = [&rows](LatencyOp op) -> const OpLatencyStats& {
    return rows[static_cast<size_t>(op)];
  };
  EXPECT_EQ(row(LatencyOp::kIngest).count, kIngests);
  EXPECT_EQ(row(LatencyOp::kQuery).count, kQueries);
  EXPECT_EQ(row(LatencyOp::kMerge).count, 1u);
  EXPECT_EQ(row(LatencyOp::kCheckpoint).count, 1u);
  // The row snapshot is taken while handling a STATS request, before
  // that request's own ack is recorded: only the first call is visible.
  EXPECT_EQ(row(LatencyOp::kStats).count, 1u);
  EXPECT_EQ(row(LatencyOp::kBusy).count, 0u);
  EXPECT_EQ(row(LatencyOp::kBusy).max_us, 0.0);

  const OpLatencyStats& ingest = row(LatencyOp::kIngest);
  EXPECT_GT(ingest.p50_us, 0.0);
  EXPECT_LE(ingest.p50_us, ingest.p90_us);
  EXPECT_LE(ingest.p90_us, ingest.p99_us);
  EXPECT_LE(ingest.p99_us, ingest.p999_us);
  // Percentiles are sketch estimates (relative accuracy alpha); the
  // tracked max is exact, so allow the estimate that tiny slack.
  EXPECT_LE(ingest.p999_us, ingest.max_us * 1.05);
  EXPECT_GT(ingest.max_us, 0.0);
}

TEST_F(ServerTest, BusyBackoffJitterIsSeededAndBounded) {
  // Decorrelated jitter: same seed replays the same schedule, distinct
  // seeds desynchronize, and every delay stays within [base/2, 1.5*base]
  // with the base doubling up to the cap.
  auto schedule = [](uint64_t seed) {
    BusyBackoff backoff(1000, seed);
    std::vector<int64_t> delays;
    for (int i = 0; i < 10; ++i) delays.push_back(backoff.NextDelayUs());
    return delays;
  };
  const std::vector<int64_t> a = schedule(1);
  const std::vector<int64_t> b = schedule(2);
  EXPECT_EQ(a, schedule(1));  // reproducible
  EXPECT_NE(a, b);            // two clients never march in lockstep
  int64_t base = 1000;
  for (size_t i = 0; i < a.size(); ++i) {
    for (int64_t delay : {a[i], b[i]}) {
      EXPECT_GE(delay, base / 2) << "attempt " << i;
      EXPECT_LE(delay, base + base / 2) << "attempt " << i;
    }
    base = std::min<int64_t>(base * 2, BusyBackoff::kMaxBackoffUs);
  }
}

TEST_F(ServerTest, BusyRetriesRespectBudgetAndFeedTheBusyLatencyRow) {
  // An always-BUSY server (budget of one byte): each ingest attempt is
  // refused, the client burns exactly 1 + busy_retries attempts, and
  // every refusal lands in the BUSY latency row — not in INGEST.
  SketchServerOptions options;
  options.staged_bytes_budget = 1;
  auto server = MustStart(Dir("busylat"), options);

  constexpr int kRetries = 3;
  SketchClient a = MustConnect(*server);
  SketchClient b = MustConnect(*server);
  a.set_busy_retries(kRetries, 50);
  b.set_busy_retries(kRetries, 50);
  a.set_busy_backoff_seed(101);
  b.set_busy_backoff_seed(202);
  EXPECT_EQ(a.IngestValue("svc", 1, 1.0).code(), StatusCode::kBusy);
  EXPECT_EQ(b.IngestValue("svc", 2, 2.0).code(), StatusCode::kBusy);

  constexpr uint64_t kExpectedRefusals = 2 * (1 + kRetries);
  EXPECT_EQ(server->busy_rejections(), kExpectedRefusals);
  auto stats = a.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const auto& rows = stats.value().op_latencies;
  EXPECT_EQ(rows[static_cast<size_t>(LatencyOp::kBusy)].count,
            kExpectedRefusals);
  EXPECT_EQ(rows[static_cast<size_t>(LatencyOp::kIngest)].count, 0u);
  EXPECT_GT(rows[static_cast<size_t>(LatencyOp::kBusy)].max_us, 0.0);
}

}  // namespace
}  // namespace dd
