// ShardedDurableStore (timeseries/sharded_store.h): directory layout
// and manifest handling, stable series routing, byte-compatibility of
// single-shard mode with legacy DurableSketchStore directories,
// cross-shard query equivalence with an unsharded store, per-shard
// checkpointing, and SIGKILL crash recovery of a 4-shard directory
// against an unsharded reference (the mergeability claim, end to end).

#include "timeseries/sharded_store.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/ddsketch.h"
#include "timeseries/durable_store.h"
#include "util/dir_layout.h"

namespace dd {
namespace {

namespace fs = std::filesystem;

class ShardedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("dd_sharded_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  static ShardedDurableStore MustOpen(const std::string& dir,
                                      size_t shards = 0) {
    ShardedDurableStoreOptions options;
    options.shards = shards;
    auto store = ShardedDurableStore::Open(dir, options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }

  fs::path root_;
};

TEST_F(ShardedStoreTest, RoutingIsStableAndCoversEveryShard) {
  // The route is part of the on-disk contract: pin a few hashes so an
  // accidental change to ShardHash fails loudly instead of orphaning
  // every sharded directory.
  EXPECT_EQ(ShardHash(""), 14695981039346656037ull);  // FNV-1a offset basis
  EXPECT_EQ(ShardHash("a"), 12638187200555641996ull);
  const size_t s = ShardedDurableStore::ShardForSeries("api.latency", 4);
  EXPECT_EQ(ShardedDurableStore::ShardForSeries("api.latency", 4), s);
  EXPECT_LT(s, 4u);
  // 100 series over 4 shards: every shard owns some of them.
  std::set<size_t> used;
  for (int i = 0; i < 100; ++i) {
    used.insert(ShardedDurableStore::ShardForSeries(
        "series." + std::to_string(i), 4));
  }
  EXPECT_EQ(used.size(), 4u);
  // A single shard takes everything.
  EXPECT_EQ(ShardedDurableStore::ShardForSeries("anything", 1), 0u);
}

TEST_F(ShardedStoreTest, FreshShardedDirectoryWritesManifestAndSubdirs) {
  {
    ShardedDurableStore store = MustOpen(Dir("s4"), 4);
    EXPECT_EQ(store.num_shards(), 4u);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(store
                      .IngestValue("series." + std::to_string(i % 5), i * 10,
                                   1.0 + i)
                      .ok());
    }
  }
  EXPECT_TRUE(fs::exists(fs::path(Dir("s4")) / "SHARDS"));
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(
        fs::exists(fs::path(ShardSubdir(Dir("s4"), k)) / "wal.log"));
  }
  auto manifest = ReadShardManifest(Dir("s4"));
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value(), 4u);
  // Auto-detect (shards = 0) adopts the manifest count and the data.
  ShardedDurableStore reopened = MustOpen(Dir("s4"));
  EXPECT_EQ(reopened.num_shards(), 4u);
  EXPECT_EQ(reopened.TotalSeries(), 5u);
  EXPECT_EQ(std::move(reopened.QueryRange("series.1", 0, 200)).value().count(),
            4u);
}

TEST_F(ShardedStoreTest, ShardCountMismatchIsIncompatible) {
  { MustOpen(Dir("s4"), 4); }
  ShardedDurableStoreOptions options;
  options.shards = 2;
  auto wrong = ShardedDurableStore::Open(Dir("s4"), options);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kIncompatible);
}

TEST_F(ShardedStoreTest, CorruptManifestIsCorruption) {
  { MustOpen(Dir("s4"), 4); }
  {
    std::ofstream out(ShardManifestPath(Dir("s4")), std::ios::trunc);
    out << "shards=banana\n";
  }
  auto opened = ShardedDurableStore::Open(Dir("s4"), {});
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST_F(ShardedStoreTest, SingleShardKeepsLegacyFlatLayout) {
  // A legacy directory written by DurableSketchStore directly...
  {
    auto legacy = DurableSketchStore::Open(Dir("flat"), {});
    ASSERT_TRUE(legacy.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(legacy.value().IngestValue("svc", i * 10, 1.0 + i).ok());
    }
  }
  // ...opens in place as one shard (explicitly or via auto-detect)...
  {
    ShardedDurableStore store = MustOpen(Dir("flat"), 1);
    EXPECT_EQ(store.num_shards(), 1u);
    EXPECT_EQ(std::move(store.QueryRange("svc", 0, 100)).value().count(), 10u);
    ASSERT_TRUE(store.IngestValue("svc", 500, 42.0).ok());
  }
  // ...never grows a manifest or shard subdirectories...
  EXPECT_FALSE(fs::exists(fs::path(Dir("flat")) / "SHARDS"));
  EXPECT_FALSE(fs::exists(fs::path(Dir("flat")) / "shard-0"));
  // ...and stays byte-compatible: the plain store reads everything back.
  auto plain = DurableSketchStore::Open(Dir("flat"), {});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(std::move(plain.value().QueryRange("svc", 0, 600)).value().count(),
            11u);
}

TEST_F(ShardedStoreTest, FreshSingleShardIsLegacyCompatibleToo) {
  {
    ShardedDurableStore store = MustOpen(Dir("fresh1"), 1);
    ASSERT_TRUE(store.IngestValue("svc", 0, 7.0).ok());
  }
  EXPECT_FALSE(fs::exists(fs::path(Dir("fresh1")) / "SHARDS"));
  auto plain = DurableSketchStore::Open(Dir("fresh1"), {});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(std::move(plain.value().QueryRange("svc", 0, 10)).value().count(),
            1u);
}

TEST_F(ShardedStoreTest, LegacyDirectoryCannotBeResplit) {
  {
    auto legacy = DurableSketchStore::Open(Dir("flat"), {});
    ASSERT_TRUE(legacy.ok());
    ASSERT_TRUE(legacy.value().IngestValue("svc", 0, 1.0).ok());
  }
  ShardedDurableStoreOptions options;
  options.shards = 4;
  auto wrong = ShardedDurableStore::Open(Dir("flat"), options);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kIncompatible);
}

TEST_F(ShardedStoreTest, ShardedQueriesMatchUnshardedReferenceExactly) {
  ShardedDurableStore sharded = MustOpen(Dir("s4"), 4);
  auto reference = std::move(SketchStore::Create(SketchStoreOptions{})).value();
  std::vector<std::string> series;
  for (int s = 0; s < 8; ++s) series.push_back("svc." + std::to_string(s));
  for (int i = 0; i < 400; ++i) {
    const std::string& name = series[i % series.size()];
    const double value = 0.5 + ((i * 13) % 197) * 0.25;
    const int64_t ts = (i % 25) * 10;
    ASSERT_TRUE(sharded.IngestValue(name, ts, value).ok());
    ASSERT_TRUE(reference.IngestValue(name, ts, value).ok());
  }
  EXPECT_EQ(sharded.TotalSeries(), series.size());
  EXPECT_EQ(sharded.ListSeries(), reference.ListSeries());
  for (const std::string& name : series) {
    for (double q : {0.1, 0.5, 0.95, 0.99}) {
      EXPECT_EQ(std::move(sharded.QueryQuantile(name, 0, 250, q)).value(),
                std::move(reference.QueryQuantile(name, 0, 250, q)).value())
          << name << " q=" << q;
    }
  }
  // Unknown series surfaces the owning shard's error.
  auto missing = sharded.QueryRange("nope", 0, 100);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardedStoreTest, PerShardCheckpointAdvancesOnlyThatShard) {
  ShardedDurableStore store = MustOpen(Dir("s3"), 3);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        store.IngestValue("series." + std::to_string(i), 0, 1.0 + i).ok());
  }
  for (size_t k = 0; k < 3; ++k) EXPECT_EQ(store.shard(k).epoch(), 1u);
  ASSERT_TRUE(store.shard(1).Checkpoint().ok());
  EXPECT_EQ(store.shard(0).epoch(), 1u);
  EXPECT_EQ(store.shard(1).epoch(), 2u);
  EXPECT_EQ(store.shard(2).epoch(), 1u);
  // The facade-wide checkpoint catches every shard up.
  ASSERT_TRUE(store.Checkpoint().ok());
  EXPECT_EQ(store.MinEpoch(), 2u);
  EXPECT_EQ(store.shard(1).epoch(), 3u);
}

TEST_F(ShardedStoreTest, CompactRollsUpEveryShardAndPreservesAnswers) {
  ShardedDurableStore store = MustOpen(Dir("s2"), 2);
  // Default ladder: raw retention is 1h, so span ~2h of data time to
  // give the (horizon-clamped) compact something old enough to fold.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store
                    .IngestValue("svc." + std::to_string(i % 6), i * 36,
                                 1.0 + (i % 31))
                    .ok());
  }
  std::vector<double> before;
  for (int s = 0; s < 6; ++s) {
    before.push_back(std::move(store.QueryQuantile("svc." + std::to_string(s),
                                                   0, 7200, 0.9))
                         .value());
  }
  auto compacted = store.Compact(/*now=*/100000);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_GT(compacted.value(), 0u);
  EXPECT_GT(store.TotalRollupFolded(), 0u);
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(std::move(store.QueryQuantile("svc." + std::to_string(s), 0,
                                            7200, 0.9))
                  .value(),
              before[s])
        << "s=" << s;
  }
}

// ---------------------------------------------------------------------------
// SIGKILL crash recovery (the ISSUE 5 acceptance bar): a child process
// ingests into a 4-shard store and is SIGKILLed mid-ingest; the parent
// reopens the directory and every recovered series must answer exactly
// like an unsharded reference store fed the same per-series prefix —
// and within the paper's 2a/(1-a) bound of ground truth.

constexpr int kCrashSeries = 6;
constexpr int kCrashRounds = 200000;  // far more than the child survives

std::string CrashSeriesName(int s) { return "crash." + std::to_string(s); }

/// Value j of series s; deterministic so the parent can rebuild any
/// per-series prefix without talking to the child.
double CrashValue(int s, int j) {
  return 0.25 + ((static_cast<uint64_t>(j) * 31 + s * 7) % 1009) * 0.5;
}

int64_t CrashTimestamp(int j) { return (j % 50) * 10; }

TEST_F(ShardedStoreTest, SigkillMidIngestRecoversShardPrefixes) {
  const std::string dir = Dir("crash");
  const std::string marker = Dir("crash.started");

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: ingest round-robin until killed. No gtest assertions here —
    // any failure exits nonzero before the marker appears and the parent
    // times out. _exit keeps gtest/ASan teardown out of the child.
    ShardedDurableStoreOptions options;
    options.shards = 4;
    auto store = ShardedDurableStore::Open(dir, options);
    if (!store.ok()) _exit(2);
    for (int j = 0; j < kCrashRounds; ++j) {
      for (int s = 0; s < kCrashSeries; ++s) {
        if (!store.value()
                 .IngestValue(CrashSeriesName(s), CrashTimestamp(j),
                              CrashValue(s, j))
                 .ok()) {
          _exit(3);
        }
      }
      if (j == 50) {
        std::ofstream out(marker);
        out << "go\n";
      }
    }
    _exit(0);
  }

  // Parent: wait for the child to be mid-stream, then kill it hard.
  for (int i = 0; i < 1000 && !fs::exists(marker); ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_TRUE(fs::exists(marker)) << "child never started ingesting";
  ::usleep(30 * 1000);  // let it get deeper mid-ingest
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child finished before the kill; "
                                       "raise kCrashRounds";

  // Recovery: the directory must open (auto-detecting 4 shards) and each
  // series must equal the reference fed its recovered prefix.
  ShardedDurableStore recovered = MustOpen(dir);
  EXPECT_EQ(recovered.num_shards(), 4u);
  uint64_t total = 0;
  for (int s = 0; s < kCrashSeries; ++s) {
    const std::string name = CrashSeriesName(s);
    auto range = recovered.QueryRange(name, 0, 500);
    ASSERT_TRUE(range.ok()) << name << ": " << range.status().ToString();
    const uint64_t count = range.value().count();
    ASSERT_GT(count, 50u) << name;  // the marker round was acknowledged
    total += count;

    // Per-shard WAL replay preserves per-series order, so the recovered
    // multiset is exactly the first `count` values of this series.
    auto reference =
        std::move(SketchStore::Create(SketchStoreOptions{})).value();
    std::vector<double> values;
    values.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      const double v = CrashValue(s, static_cast<int>(j));
      ASSERT_TRUE(reference
                      .IngestValue(name, CrashTimestamp(static_cast<int>(j)),
                                   v)
                      .ok());
      values.push_back(v);
    }
    std::sort(values.begin(), values.end());
    constexpr double kAlpha = 0.01;  // the default DDSketchConfig accuracy
    constexpr double kBound = 2 * kAlpha / (1 - kAlpha);
    for (double q : {0.5, 0.95, 0.99}) {
      const double sharded_q =
          std::move(recovered.QueryQuantile(name, 0, 500, q)).value();
      const double reference_q =
          std::move(reference.QueryQuantile(name, 0, 500, q)).value();
      // Identical per-series input in identical order: the recovered
      // shard sketch is bucket-identical to the unsharded reference.
      EXPECT_EQ(sharded_q, reference_q) << name << " q=" << q;
      // And the paper's guarantee holds against exact order statistics.
      const double exact =
          values[std::min(values.size() - 1,
                          static_cast<size_t>(q * (values.size() - 1) + 0.5))];
      EXPECT_LE(std::abs(sharded_q - exact) / exact, kBound + 1e-9)
          << name << " q=" << q;
    }
  }
  EXPECT_GT(total, 300u);
}

}  // namespace
}  // namespace dd
