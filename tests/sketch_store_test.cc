#include "timeseries/sketch_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

SketchStore MakeStore(int64_t base = 10, int64_t retention = 600,
                      int factor = 6) {
  SketchStoreOptions options;
  options.levels = {{base, retention}, {base * factor, 0}};
  auto r = SketchStore::Create(options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(SketchStoreTest, CreateValidation) {
  SketchStoreOptions options;
  // Zero base interval.
  options.levels = {{0, 600}, {60, 0}};
  EXPECT_FALSE(SketchStore::Create(options).ok());
  // Coarse interval not a multiple of the previous level's.
  options.levels = {{10, 600}, {25, 0}};
  EXPECT_FALSE(SketchStore::Create(options).ok());
  // Coarse interval equal to fine (factor must be >= 2).
  options.levels = {{10, 600}, {10, 0}};
  EXPECT_FALSE(SketchStore::Create(options).ok());
  // Retention shorter than the next level's interval.
  options.levels = {{10, 5}, {60, 0}};
  EXPECT_FALSE(SketchStore::Create(options).ok());
  // retention=0 (keep forever) only allowed on the last level.
  options.levels = {{10, 0}, {60, 0}};
  EXPECT_FALSE(SketchStore::Create(options).ok());
  // Finite last-level retention shorter than its own interval.
  options.levels = {{10, 600}, {60, 30}};
  EXPECT_FALSE(SketchStore::Create(options).ok());
  // Invalid sketch params still rejected.
  options.levels = {{10, 600}, {60, 0}};
  options.sketch.relative_accuracy = 2.0;
  EXPECT_FALSE(SketchStore::Create(options).ok());
  // Empty ladder adopts the default.
  options = SketchStoreOptions{};
  auto adopted = SketchStore::Create(options);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(adopted.value().options().levels, DefaultRollupLevels());
}

TEST(SketchStoreTest, IngestAndQuerySingleInterval) {
  SketchStore store = MakeStore();
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(store.IngestValue("latency", 1000 + i % 10, i).ok());
  }
  auto q = store.QueryQuantile("latency", 1000, 1010, 0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value(), 50.0, 50.0 * 0.011);
  EXPECT_EQ(store.num_series(), 1u);
  EXPECT_EQ(store.num_intervals(), 1u);
}

TEST(SketchStoreTest, IngestValuesMatchesPerValueIngest) {
  SketchStore batched = MakeStore();
  SketchStore scalar = MakeStore();
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(std::exp(rng.NextDouble() * 6));
  }
  ASSERT_TRUE(batched.IngestValues("latency", 1004, values).ok());
  for (double v : values) {
    ASSERT_TRUE(scalar.IngestValue("latency", 1004, v).ok());
  }
  ASSERT_TRUE(batched.IngestValues("latency", 1004, {}).ok());  // no-op
  auto a = batched.QueryRange("latency", 1000, 1010);
  auto b = scalar.QueryRange("latency", 1000, 1010);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().count(), b.value().count());
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(a.value().QuantileOrNaN(q), b.value().QuantileOrNaN(q));
  }
  EXPECT_EQ(batched.num_intervals(), 1u);
}

TEST(SketchStoreTest, QueryValidation) {
  SketchStore store = MakeStore();
  EXPECT_FALSE(store.QueryRange("nope", 0, 100).ok());
  ASSERT_TRUE(store.IngestValue("s", 0, 1.0).ok());
  EXPECT_FALSE(store.QueryRange("s", 100, 100).ok());
  EXPECT_FALSE(store.QueryRange("s", 200, 100).ok());
  EXPECT_FALSE(store.QuerySeries("s", 0, 100, 0.5, 0).ok());
}

TEST(SketchStoreTest, RangeQueryMatchesReferenceSketch) {
  SketchStore store = MakeStore();
  auto reference = std::move(DDSketch::Create(DDSketchConfig{})).value();
  DataStream stream(MakeDataset(DatasetId::kWebLatency), 211);
  Rng rng(212);
  // 10 minutes of data across scattered timestamps.
  for (int i = 0; i < 20000; ++i) {
    const int64_t ts = static_cast<int64_t>(rng.NextBounded(600));
    const double v = stream.Next();
    ASSERT_TRUE(store.IngestValue("api.latency", ts, v).ok());
    reference.Add(v);
  }
  auto merged = store.QueryRange("api.latency", 0, 600);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged.value().count(), reference.count());
  for (double q = 0.01; q < 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(merged.value().QuantileOrNaN(q),
                     reference.QuantileOrNaN(q))
        << q;
  }
}

TEST(SketchStoreTest, SubrangeQueriesSelectCorrectIntervals) {
  SketchStore store = MakeStore(/*base=*/10);
  // Interval [0,10): value 1; [10,20): value 10; [20,30): value 100.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.IngestValue("s", 3, 1.0).ok());
    ASSERT_TRUE(store.IngestValue("s", 13, 10.0).ok());
    ASSERT_TRUE(store.IngestValue("s", 23, 100.0).ok());
  }
  EXPECT_NEAR(std::move(store.QueryQuantile("s", 0, 10, 0.5)).value(), 1.0,
              0.011);
  EXPECT_NEAR(std::move(store.QueryQuantile("s", 10, 20, 0.5)).value(), 10.0,
              0.11);
  EXPECT_NEAR(std::move(store.QueryQuantile("s", 0, 20, 0.99)).value(), 10.0,
              0.11);
  EXPECT_NEAR(std::move(store.QueryQuantile("s", 0, 30, 0.99)).value(), 100.0,
              1.1);
}

TEST(SketchStoreTest, IngestSerializedWorkerSketches) {
  SketchStore store = MakeStore();
  auto worker = std::move(DDSketch::Create(DDSketchConfig{})).value();
  for (int i = 1; i <= 1000; ++i) worker.Add(static_cast<double>(i));
  ASSERT_TRUE(store.Ingest("svc", 42, worker.Serialize()).ok());
  ASSERT_TRUE(store.Ingest("svc", 42, worker.Serialize()).ok());
  auto merged = store.QueryRange("svc", 40, 50);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().count(), 2000u);
  // Corrupt payloads and incompatible parameters are rejected.
  EXPECT_EQ(store.Ingest("svc", 42, "garbage").code(),
            StatusCode::kCorruption);
  auto wrong = std::move(DDSketch::Create(0.05)).value();
  wrong.Add(1.0);
  EXPECT_EQ(store.Ingest("svc", 42, wrong.Serialize()).code(),
            StatusCode::kIncompatible);
}

TEST(SketchStoreTest, CompactionPreservesAnswersExactly) {
  // The headline property: rollup is lossless because merging is exact.
  SketchStore store = MakeStore(/*base=*/10, /*retention=*/100,
                                /*factor=*/6);
  DataStream stream(MakeDataset(DatasetId::kWebLatency), 213);
  Rng rng(214);
  for (int i = 0; i < 30000; ++i) {
    const int64_t ts = static_cast<int64_t>(rng.NextBounded(3600));
    ASSERT_TRUE(store.IngestValue("svc", ts, stream.Next()).ok());
  }
  // Snapshot answers before compaction.
  std::vector<double> before;
  for (double q = 0.05; q < 1.0; q += 0.05) {
    before.push_back(std::move(store.QueryQuantile("svc", 0, 3600, q)).value());
  }
  const size_t intervals_before = store.num_intervals();
  const size_t compacted = store.Compact(/*now=*/3600);
  EXPECT_GT(compacted, 0u);
  EXPECT_LT(store.num_intervals(), intervals_before);
  size_t i = 0;
  for (double q = 0.05; q < 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(std::move(store.QueryQuantile("svc", 0, 3600, q)).value(),
                     before[i++])
        << q;
  }
  // Compacting again is a no-op.
  EXPECT_EQ(store.Compact(3600), 0u);
}

TEST(SketchStoreTest, CompactionShrinksStorage) {
  SketchStore store = MakeStore(/*base=*/10, /*retention=*/60, /*factor=*/6);
  Rng rng(215);
  for (int64_t ts = 0; ts < 3600; ts += 1) {
    ASSERT_TRUE(store.IngestValue("svc", ts, rng.NextDouble()).ok());
  }
  const size_t before = store.num_intervals();
  store.Compact(3600);
  // 360 raw intervals; all but the last ~6 compacted 6:1.
  EXPECT_EQ(before, 360u);
  EXPECT_LE(store.num_intervals(), 360u / 6 + 7);
  EXPECT_GT(store.size_in_bytes(), 0u);
}

TEST(SketchStoreTest, MultiLevelLadderCascades) {
  // Three levels: 10s (keep 60s) -> 60s (keep 600s) -> 600s (forever).
  // Data old enough crosses both boundaries in a single Compact pass.
  SketchStoreOptions options;
  options.levels = {{10, 60}, {60, 600}, {600, 0}};
  auto store = std::move(SketchStore::Create(options)).value();
  Rng rng(300);
  for (int64_t ts = 0; ts < 3600; ts += 5) {
    ASSERT_TRUE(store.IngestValue("svc", ts, 1 + rng.NextDouble()).ok());
  }
  auto before = store.QueryRange("svc", 0, 3600);
  ASSERT_TRUE(before.ok());
  const size_t folded = store.Compact(3600);
  EXPECT_GT(folded, 0u);
  auto levels = store.LevelStats();
  ASSERT_EQ(levels.size(), 3u);
  // Oldest data cascaded all the way into the 600s tier.
  EXPECT_GT(levels[2].num_intervals, 0u);
  EXPECT_GT(levels[1].num_intervals, 0u);
  EXPECT_GT(levels[2].rollup_merges, 0u);
  // Raw tier retains only the freshest ~60s.
  EXPECT_LE(levels[0].num_intervals, 6u + 1u);
  // Answers unchanged: rollup moves data between tiers, never drops it.
  auto after = store.QueryRange("svc", 0, 3600);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().count(), before.value().count());
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(after.value().QuantileOrNaN(q),
                     before.value().QuantileOrNaN(q));
  }
}

TEST(SketchStoreTest, CompactClampsToDataHorizon) {
  // A wall clock far ahead of the data must not roll up the newest
  // retention's worth of *data time*: Compact clamps `now` to the data
  // horizon, so lagging ingest clocks never lose raw resolution.
  SketchStore store = MakeStore(/*base=*/10, /*retention=*/600, /*factor=*/6);
  for (int64_t ts = 0; ts < 300; ts += 10) {
    ASSERT_TRUE(store.IngestValue("svc", ts, 1.0).ok());
  }
  EXPECT_EQ(store.DataHorizon(), 300);
  // Horizon-clamped: effective now is 300, newest 600s stay raw.
  EXPECT_EQ(store.Compact(/*now=*/1000000), 0u);
  auto levels = store.LevelStats();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].num_intervals, 30u);
  EXPECT_EQ(levels[1].num_intervals, 0u);
  // Saturated compact equals compact at the horizon: both are the pure
  // data-time fold (this is what checkpoints run).
  SketchStore a = MakeStore(10, 100, 6);
  SketchStore b = MakeStore(10, 100, 6);
  for (int64_t ts = 0; ts < 1200; ts += 10) {
    ASSERT_TRUE(a.IngestValue("svc", ts, 2.0).ok());
    ASSERT_TRUE(b.IngestValue("svc", ts, 2.0).ok());
  }
  EXPECT_EQ(a.Compact(std::numeric_limits<int64_t>::max()),
            b.Compact(b.DataHorizon()));
  EXPECT_EQ(a.num_intervals(), b.num_intervals());
}

TEST(SketchStoreTest, CompactOnEmptyStoreIsNoop) {
  SketchStore store = MakeStore();
  EXPECT_EQ(store.Compact(std::numeric_limits<int64_t>::max()), 0u);
  EXPECT_EQ(store.DataHorizon(), std::numeric_limits<int64_t>::min());
}

TEST(SketchStoreTest, LastLevelRetentionDropsExpiredBuckets) {
  // Finite retention on the last level deletes (not folds) old buckets.
  SketchStoreOptions options;
  options.levels = {{10, 60}, {60, 120}};
  auto store = std::move(SketchStore::Create(options)).value();
  for (int64_t ts = 0; ts < 600; ts += 10) {
    ASSERT_TRUE(store.IngestValue("svc", ts, 1.0).ok());
  }
  store.Compact(600);
  // Horizon 600: raw keeps [540,600), 60s tier keeps [480,540); buckets
  // before AlignDown(600-120, 60)=480 are gone.
  auto merged = store.QueryRange("svc", 0, 480);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged.value().empty());
  auto kept = store.QueryRange("svc", 480, 600);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.value().count(), 12u);
}

TEST(SketchStoreTest, SeriesAreIsolated) {
  SketchStore store = MakeStore();
  ASSERT_TRUE(store.IngestValue("a", 0, 1.0).ok());
  ASSERT_TRUE(store.IngestValue("b", 0, 1000.0).ok());
  EXPECT_NEAR(std::move(store.QueryQuantile("a", 0, 10, 0.5)).value(), 1.0,
              0.011);
  EXPECT_NEAR(std::move(store.QueryQuantile("b", 0, 10, 0.5)).value(), 1000.0,
              10.1);
  const auto names = store.ListSeries();
  EXPECT_EQ(names.size(), 2u);
}

TEST(SketchStoreTest, GraphQueryProducesSteppedQuantiles) {
  SketchStore store = MakeStore(/*base=*/10);
  // Latency steps up by 10x each minute; graph with 60s steps.
  for (int minute = 0; minute < 5; ++minute) {
    const double scale = std::pow(10.0, minute);
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE(store.IngestValue(
          "svc", minute * 60 + i % 60, scale * (1 + (i % 10) / 10.0)).ok());
    }
  }
  auto points = store.QuerySeries("svc", 0, 300, 0.5, 60);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 5u);
  for (size_t m = 0; m < 5; ++m) {
    EXPECT_EQ(points.value()[m].timestamp, static_cast<int64_t>(m) * 60);
    EXPECT_EQ(points.value()[m].count, 600u);
    EXPECT_NEAR(points.value()[m].value / std::pow(10.0, m), 1.5, 0.2) << m;
  }
  // Gaps are skipped.
  auto sparse = store.QuerySeries("svc", 0, 600, 0.5, 60);
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse.value().size(), 5u);  // minutes 5..9 have no data
}

TEST(SketchStoreTest, NegativeTimestampsWork) {
  SketchStore store = MakeStore(/*base=*/10);
  ASSERT_TRUE(store.IngestValue("s", -25, 7.0).ok());
  ASSERT_TRUE(store.IngestValue("s", -21, 7.0).ok());
  auto q = store.QueryQuantile("s", -30, -20, 0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value(), 7.0, 0.08);
  // The interval floor must round towards negative infinity, not zero.
  auto empty = store.QueryRange("s", -20, -10);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(SketchStoreTest, AccuracyGuaranteeSurvivesStorePath) {
  // End to end: values -> worker sketches -> wire -> store -> compaction
  // -> range query, still alpha-accurate vs raw ground truth.
  SketchStore store = MakeStore(/*base=*/10, /*retention=*/60, /*factor=*/6);
  DataStream stream(MakeDataset(DatasetId::kSpan), 216);
  std::vector<double> all;
  for (int64_t interval = 0; interval < 120; ++interval) {
    auto worker = std::move(DDSketch::Create(DDSketchConfig{})).value();
    for (int i = 0; i < 500; ++i) {
      const double v = stream.Next();
      worker.Add(v);
      all.push_back(v);
    }
    ASSERT_TRUE(store.Ingest("svc", interval * 10, worker.Serialize()).ok());
  }
  store.Compact(1200);
  ExactQuantiles truth(all);
  for (double q : {0.5, 0.95, 0.99}) {
    auto estimate = store.QueryQuantile("svc", 0, 1200, q);
    ASSERT_TRUE(estimate.ok());
    EXPECT_LE(RelativeError(estimate.value(), truth.Quantile(q)),
              0.01 * (1 + 1e-9))
        << q;
  }
}

}  // namespace
}  // namespace dd
