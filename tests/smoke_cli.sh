#!/bin/sh
# End-to-end smoke test for tools/ddsketch_cli: generate a stream, sketch
# it, inspect it, query it, and merge two sketches. Any non-zero exit or
# unexpected output fails the test.
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate pareto 10000 42 > "$WORK/values.txt"
[ "$(wc -l < "$WORK/values.txt")" -eq 10000 ]

"$CLI" build --alpha 0.01 --out "$WORK/a.dds" < "$WORK/values.txt"
# Generate to a file rather than piping: in a pipeline, set -e only sees
# the last command's status, so a generate failure would be masked.
"$CLI" generate pareto 10000 7 > "$WORK/values2.txt"
"$CLI" build --alpha 0.01 --out "$WORK/b.dds" < "$WORK/values2.txt"

"$CLI" info "$WORK/a.dds" | grep -q "count"
"$CLI" query "$WORK/a.dds" 0.5 0.99 > "$WORK/q.txt"
[ -s "$WORK/q.txt" ]

"$CLI" merge "$WORK/merged.dds" "$WORK/a.dds" "$WORK/b.dds"
"$CLI" query "$WORK/merged.dds" 0.5 > /dev/null

echo "smoke_cli OK"
