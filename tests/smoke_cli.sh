#!/bin/sh
# End-to-end smoke test for tools/ddsketch_cli: generate a stream, sketch
# it, inspect it, query it, and merge two sketches. Any non-zero exit or
# unexpected output fails the test.
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate pareto 10000 42 > "$WORK/values.txt"
[ "$(wc -l < "$WORK/values.txt")" -eq 10000 ]

"$CLI" build --alpha 0.01 --out "$WORK/a.dds" < "$WORK/values.txt"
# Generate to a file rather than piping: in a pipeline, set -e only sees
# the last command's status, so a generate failure would be masked.
"$CLI" generate pareto 10000 7 > "$WORK/values2.txt"
"$CLI" build --alpha 0.01 --out "$WORK/b.dds" < "$WORK/values2.txt"

"$CLI" info "$WORK/a.dds" | grep -q "count"
"$CLI" query "$WORK/a.dds" 0.5 0.99 > "$WORK/q.txt"
[ -s "$WORK/q.txt" ]

"$CLI" merge "$WORK/merged.dds" "$WORK/a.dds" "$WORK/b.dds"
"$CLI" query "$WORK/merged.dds" 0.5 > /dev/null

# Durable time-series flow: ingest into a data dir, query it back, survive
# a reopen (fresh process), compact, and query the same answer again.
head -1000 "$WORK/values.txt" | "$CLI" ingest --data-dir "$WORK/ts" --series svc --timestamp 100
[ -f "$WORK/ts/wal.log" ]
"$CLI" query --data-dir "$WORK/ts" --series svc --start 0 --end 200 0.5 > "$WORK/d1.txt"
[ -s "$WORK/d1.txt" ]
"$CLI" compact --data-dir "$WORK/ts" --now 100000
[ -f "$WORK/ts/snapshot.dds" ]
"$CLI" query --data-dir "$WORK/ts" --series svc --start 0 --end 200 0.5 > "$WORK/d2.txt"
cmp "$WORK/d1.txt" "$WORK/d2.txt"

echo "smoke_cli OK"
