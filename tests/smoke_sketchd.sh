#!/bin/sh
# End-to-end socket smoke test for the sketchd daemon: start it on a temp
# data dir, ingest 10k values over the wire via ddsketch_cli, check the
# quantiles against an in-process reference sketch built from the same
# values (within the paper's accuracy bound), SIGKILL the daemon, restart
# it, and verify recovery answers byte-identically.
set -eu

SKETCHD="$1"
CLI="$2"
WORK="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_port() {
  # sketchd writes the bound port atomically once it is listening.
  i=0
  while [ ! -s "$1" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "sketchd did not start"; exit 1; }
    sleep 0.1
  done
  cat "$1"
}

"$CLI" generate web_latency 10000 42 > "$WORK/values.txt"
[ "$(wc -l < "$WORK/values.txt")" -eq 10000 ]

"$SKETCHD" --data-dir "$WORK/data" --port 0 --port-file "$WORK/port" \
  > "$WORK/sketchd.log" 2>&1 &
PID=$!
PORT="$(wait_for_port "$WORK/port")"

# Ingest >=10k values over the socket; every ack is a durable commit.
"$CLI" remote-ingest --port "$PORT" --series api.latency --timestamp 100 \
  < "$WORK/values.txt"
[ -f "$WORK/data/wal.log" ]

"$CLI" remote-query --port "$PORT" --series api.latency --start 0 --end 200 \
  0.5 0.95 0.99 > "$WORK/q1.txt"
[ -s "$WORK/q1.txt" ]

# Reference: the same values sketched in-process at the same alpha. The
# daemon's interval sketch saw the identical stream, so each quantile
# must agree within the paper's relative-accuracy bound 2a/(1-a) ~ 2.02%
# for a = 0.01 (they actually agree exactly; the tolerance guards the
# check against future divergence, not against the sketch).
"$CLI" build --alpha 0.01 --out "$WORK/ref.dds" < "$WORK/values.txt"
"$CLI" query "$WORK/ref.dds" 0.5 0.95 0.99 > "$WORK/qref.txt"
paste "$WORK/q1.txt" "$WORK/qref.txt" | awk '
  { a = $2; b = $4; d = a - b; if (d < 0) d = -d;
    m = b; if (m < 0) m = -m;
    if (m == 0 || d / m > 0.0202) { print "quantile mismatch:", $0; bad = 1 } }
  END { exit bad }'

# Crash hard: no shutdown hook runs; recovery must come from the WAL.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

"$SKETCHD" --data-dir "$WORK/data" --port 0 --port-file "$WORK/port2" \
  > "$WORK/sketchd2.log" 2>&1 &
PID=$!
PORT="$(wait_for_port "$WORK/port2")"

"$CLI" remote-query --port "$PORT" --series api.latency --start 0 --end 200 \
  0.5 0.95 0.99 > "$WORK/q2.txt"
# Every ingest was acknowledged before the kill, so recovery must answer
# byte-identically.
cmp "$WORK/q1.txt" "$WORK/q2.txt"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "smoke_sketchd OK"
