#!/bin/sh
# End-to-end socket smoke test for the sketchd daemon, in seven acts:
#
#  0. doc drift: every --flag named in docs/OPERATIONS.md's flag table
#     must appear in `sketchd --help`.
#  1. legacy single-shard pass: start on a temp data dir, ingest 10k
#     values over the wire via ddsketch_cli, check the quantiles against
#     an in-process reference sketch built from the same values (within
#     the paper's accuracy bound), check the daemon's own v4 per-op
#     ack-latency rows (nonzero INGEST/QUERY counts, ordered
#     percentiles), SIGKILL the daemon, restart it, and verify recovery
#     answers byte-identically.
#  2. sharded pass (--shards 4): ingest the same stream into four series,
#     observe a background checkpoint via remote-stats (epoch advances
#     with no client CHECKPOINT), SIGKILL, restart WITHOUT --shards
#     (auto-detect from the SHARDS manifest), verify byte-identical
#     answers, and finally open the sharded directory directly with
#     `ddsketch_cli query --data-dir`.
#  3. event-loop scale pass (ulimit permitting): park ~1k idle
#     connections, drive a hot minority through them, and check that
#     ingest completes, RSS stays flat while the idle majority is
#     parked, and remote-stats reports the connection/backpressure
#     counters.
#  4. replication failover pass: primary + follower pair, ingest 5k
#     values, SIGKILL the primary, remote-promote the follower, verify
#     it answers byte-identically and accepts writes, then bring the
#     deposed primary's directory back as a follower and verify direct
#     writes to it are refused with FENCED.
#  5. rollup retention pass: a 10s→10m laddered daemon vs a never-folding
#     baseline fed the same 8-hour aged stream; remote-compact must preserve
#     coarse-window answers byte-identically, shrink the snapshot >=4x,
#     surface per-level remote-stats rows, and survive SIGKILL+restart.
#  6. per-tag admission pass (--tag-budget gold=3,bronze=1): tagged
#     remote-stress traffic from two tenants is fully acked, each tag's
#     summary line names its ledger, and remote-stats exposes one `tag`
#     row per tenant with weighted floors, drained staging, and a
#     per-tag ack-latency sketch that counted every record.
set -eu

SKETCHD="$1"
CLI="$2"
OPS="$3"
WORK="$(mktemp -d)"
PID=""
PID2=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null
  [ -n "$PID2" ] && kill -9 "$PID2" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_port() {
  # sketchd writes the bound port atomically once it is listening.
  i=0
  while [ ! -s "$1" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "sketchd did not start"; exit 1; }
    sleep 0.1
  done
  cat "$1"
}

# --- 0: no doc drift -------------------------------------------------------
# The operator manual's flag table (between the flags:begin/flags:end
# markers) is the contract; --help must know every flag it documents.
HELP="$("$SKETCHD" --help)"
FLAGS="$(sed -n '/flags:begin/,/flags:end/p' "$OPS" | grep -oE -- '--[a-z][a-z-]*' | sort -u)"
NFLAGS=0
for flag in $FLAGS; do
  NFLAGS=$((NFLAGS + 1))
  case "$HELP" in
    *"$flag"*) ;;
    *) echo "OPERATIONS.md documents $flag but sketchd --help does not"; exit 1 ;;
  esac
done
# Guard the grep itself: if the doc's table markers move, fail loudly
# instead of silently checking nothing.
[ "$NFLAGS" -ge 8 ] || { echo "flag table not found in $OPS"; exit 1; }

"$CLI" generate web_latency 10000 42 > "$WORK/values.txt"
[ "$(wc -l < "$WORK/values.txt")" -eq 10000 ]

# --- 1: legacy single-shard pass -------------------------------------------
"$SKETCHD" --data-dir "$WORK/data" --port 0 --port-file "$WORK/port" \
  > "$WORK/sketchd.log" 2>&1 &
PID=$!
PORT="$(wait_for_port "$WORK/port")"

# Ingest >=10k values over the socket; every ack is a durable commit.
"$CLI" remote-ingest --port "$PORT" --series api.latency --timestamp 100 \
  < "$WORK/values.txt"
# Single-shard mode keeps the legacy flat layout (no SHARDS manifest).
[ -f "$WORK/data/wal.log" ]
[ ! -f "$WORK/data/SHARDS" ]

"$CLI" remote-query --port "$PORT" --series api.latency --start 0 --end 200 \
  0.5 0.95 0.99 > "$WORK/q1.txt"
[ -s "$WORK/q1.txt" ]

# Reference: the same values sketched in-process at the same alpha. The
# daemon's interval sketch saw the identical stream, so each quantile
# must agree within the paper's relative-accuracy bound 2a/(1-a) ~ 2.02%
# for a = 0.01 (they actually agree exactly; the tolerance guards the
# check against future divergence, not against the sketch).
"$CLI" build --alpha 0.01 --out "$WORK/ref.dds" < "$WORK/values.txt"
"$CLI" query "$WORK/ref.dds" 0.5 0.95 0.99 > "$WORK/qref.txt"
paste "$WORK/q1.txt" "$WORK/qref.txt" | awk '
  { a = $2; b = $4; d = a - b; if (d < 0) d = -d;
    m = b; if (m < 0) m = -m;
    if (m == 0 || d / m > 0.0202) { print "quantile mismatch:", $0; bad = 1 } }
  END { exit bad }'

# Dogfooding: the daemon measured its own acks with a DDSketch. After
# 10k ingests and one query the INGEST/QUERY latency rows must carry
# those counts, and each populated row's percentiles must be ordered
# (p50 <= p90 <= p99 <= p999; the exact max bounds the p999 estimate
# within the sketch's relative accuracy).
"$CLI" remote-stats --port "$PORT" > "$WORK/stats1.txt"
grep -q '^op_latency INGEST ' "$WORK/stats1.txt" || {
  echo "remote-stats lacks op_latency rows"; cat "$WORK/stats1.txt"; exit 1; }
awk '
  $1 == "op_latency" {
    op = $2
    for (i = 3; i <= NF; i++) {
      split($i, kv, "="); row[op "." kv[1]] = kv[2]
    }
  }
  END {
    if (row["INGEST.count"] < 10000) {
      print "INGEST latency count " row["INGEST.count"] " < 10000"; exit 1 }
    if (row["QUERY.count"] < 1) {
      print "QUERY latency row empty"; exit 1 }
    for (op in row) {
      split(op, part, "."); o = part[1]
      if (part[2] != "count" || row[o ".count"] == 0) continue
      if (row[o ".p50_us"] <= 0 ||
          row[o ".p50_us"] > row[o ".p90_us"] ||
          row[o ".p90_us"] > row[o ".p99_us"] ||
          row[o ".p99_us"] > row[o ".p999_us"] ||
          row[o ".p999_us"] > row[o ".max_us"] * 1.05) {
        print o " latency percentiles not ordered"; exit 1 }
    }
  }' "$WORK/stats1.txt" || { cat "$WORK/stats1.txt"; exit 1; }

# Crash hard: no shutdown hook runs; recovery must come from the WAL.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

"$SKETCHD" --data-dir "$WORK/data" --port 0 --port-file "$WORK/port2" \
  > "$WORK/sketchd2.log" 2>&1 &
PID=$!
PORT="$(wait_for_port "$WORK/port2")"

"$CLI" remote-query --port "$PORT" --series api.latency --start 0 --end 200 \
  0.5 0.95 0.99 > "$WORK/q2.txt"
# Every ingest was acknowledged before the kill, so recovery must answer
# byte-identically.
cmp "$WORK/q1.txt" "$WORK/q2.txt"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# --- 2: sharded pass (--shards 4, background checkpoints on) ---------------
"$SKETCHD" --data-dir "$WORK/data4" --shards 4 --checkpoint-wal-bytes 65536 \
  --port 0 --port-file "$WORK/port4" > "$WORK/sketchd4.log" 2>&1 &
PID=$!
PORT="$(wait_for_port "$WORK/port4")"

# The same 10k values into four series: the hash spreads them over the
# shards, and each series' sketch must equal the single-shard run's.
for s in 0 1 2 3; do
  "$CLI" remote-ingest --port "$PORT" --series "api.latency.$s" \
    --timestamp 100 < "$WORK/values.txt"
done
[ -f "$WORK/data4/SHARDS" ]
[ -d "$WORK/data4/shard-0" ] && [ -d "$WORK/data4/shard-3" ]

for s in 0 1 2 3; do
  "$CLI" remote-query --port "$PORT" --series "api.latency.$s" \
    --start 0 --end 200 0.5 0.95 0.99 > "$WORK/q4_$s.txt"
  # Identical input stream at the same alpha: the sharded daemon must
  # answer exactly what the single-shard daemon answered.
  cmp "$WORK/q4_$s.txt" "$WORK/q1.txt"
done

# Background checkpoints: each series pushed ~300 kB into its shard's
# WAL, far past --checkpoint-wal-bytes, so the scheduler must have
# checkpointed (epoch >= 2 on some shard) with no client CHECKPOINT sent.
i=0
while :; do
  "$CLI" remote-stats --port "$PORT" > "$WORK/stats4.txt"
  BG="$(awk '$1 == "background_checkpoints" { print $2 }' "$WORK/stats4.txt")"
  [ "${BG:-0}" -gt 0 ] && break
  i=$((i + 1))
  [ "$i" -le 100 ] || {
    echo "no background checkpoint observed"; cat "$WORK/stats4.txt"; exit 1; }
  sleep 0.1
done
grep -E '^shard [0-9]+ .* epoch=([2-9]|[1-9][0-9])' "$WORK/stats4.txt" \
  > /dev/null || {
    echo "no shard epoch advanced"; cat "$WORK/stats4.txt"; exit 1; }

# Crash hard mid-life and restart WITHOUT --shards: the SHARDS manifest
# must be auto-detected and every acknowledged ingest recovered.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

"$SKETCHD" --data-dir "$WORK/data4" --port 0 --port-file "$WORK/port4b" \
  > "$WORK/sketchd4b.log" 2>&1 &
PID=$!
PORT="$(wait_for_port "$WORK/port4b")"

for s in 0 1 2 3; do
  "$CLI" remote-query --port "$PORT" --series "api.latency.$s" \
    --start 0 --end 200 0.5 0.95 0.99 > "$WORK/q5_$s.txt"
  cmp "$WORK/q5_$s.txt" "$WORK/q4_$s.txt"
done

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# The CLI opens the sharded directory directly (auto-detected layout,
# same hash route) and answers exactly like the daemon did.
"$CLI" query --data-dir "$WORK/data4" --series api.latency.2 \
  --start 0 --end 200 0.5 0.95 0.99 > "$WORK/qcli.txt"
cmp "$WORK/qcli.txt" "$WORK/q1.txt"

# --- 3: event-loop scale pass (1k idle conns + hot minority) ---------------
# Each parked connection costs one fd on both sides plus the CLI's own;
# skip (not fail) when the environment cannot hold ~2.3k descriptors.
NOFILE="$(ulimit -n 2>/dev/null || echo 0)"
if [ "$NOFILE" != "unlimited" ] && [ "${NOFILE:-0}" -lt 2400 ]; then
  ulimit -n 2400 2>/dev/null || true
  NOFILE="$(ulimit -n 2>/dev/null || echo 0)"
fi
if [ "$NOFILE" = "unlimited" ] || [ "${NOFILE:-0}" -ge 2400 ]; then
  "$SKETCHD" --data-dir "$WORK/data_scale" --port 0 \
    --port-file "$WORK/port_scale" > "$WORK/sketchd_scale.log" 2>&1 &
  PID=$!
  PORT="$(wait_for_port "$WORK/port_scale")"

  rss_kb() { awk '$1 == "VmRSS:" { print $2 }' "/proc/$1/status"; }

  # Warm up (first ingest maps the store), then baseline RSS.
  "$CLI" remote-stress --port "$PORT" --series warm \
    --idle-conns 0 --hot-conns 1 --count 100 > /dev/null
  RSS0="$(rss_kb "$PID")"

  # The scale run: ~1k parked idle connections, 4 hot ones ingesting.
  "$CLI" remote-stress --port "$PORT" --series scale \
    --idle-conns 1000 --hot-conns 4 --count 2500 > "$WORK/stress.txt"
  cat "$WORK/stress.txt"
  PARKED="$(awk '$1 == "parked_conns" { print $2 }' "$WORK/stress.txt")"
  ACKED="$(awk '$1 == "acked" { print $2 }' "$WORK/stress.txt")"
  [ "${PARKED:-0}" -ge 900 ] || { echo "parked only $PARKED conns"; exit 1; }
  # Ingest completed: every send was acked (refused-after-retry is a
  # failure here; the default budget cannot fill from 4 writers).
  [ "${ACKED:-0}" -eq 10000 ] || { echo "acked $ACKED of 10000"; exit 1; }

  # RSS stayed flat: parked connections are epoll registrations, not
  # threads/stacks. Allow 32 MB of slack over the warm baseline.
  RSS1="$(rss_kb "$PID")"
  GROWTH=$((RSS1 - RSS0))
  [ "$GROWTH" -le 32768 ] || {
    echo "RSS grew ${GROWTH} kB across the 1k-conn pass"; exit 1; }

  # The v3 serving counters are visible over the wire and plausible:
  # every stress connection was counted, and nothing is left staged.
  "$CLI" remote-stats --port "$PORT" > "$WORK/stats_scale.txt"
  for key in connections_open connections_accepted connections_shed \
             busy_rejections staged_bytes; do
    grep -q "^$key " "$WORK/stats_scale.txt" || {
      echo "remote-stats lacks $key"; cat "$WORK/stats_scale.txt"; exit 1; }
  done
  ACCEPTED="$(awk '$1 == "connections_accepted" { print $2 }' "$WORK/stats_scale.txt")"
  STAGED="$(awk '$1 == "staged_bytes" { print $2 }' "$WORK/stats_scale.txt")"
  [ "${ACCEPTED:-0}" -ge 1000 ] || {
    echo "connections_accepted only $ACCEPTED"; exit 1; }
  [ "${STAGED:-1}" -eq 0 ] || { echo "staged_bytes stuck at $STAGED"; exit 1; }

  kill "$PID"
  wait "$PID" 2>/dev/null || true
  PID=""
else
  echo "skipping act 3: ulimit -n is $NOFILE (< 2400)"
fi

# --- 4: replication failover pass ------------------------------------------
"$SKETCHD" --data-dir "$WORK/dataP" --port 0 --port-file "$WORK/portP" \
  > "$WORK/sketchdP.log" 2>&1 &
PID=$!
PORT_P="$(wait_for_port "$WORK/portP")"

"$SKETCHD" --data-dir "$WORK/dataF" --role follower \
  --follow "127.0.0.1:$PORT_P" --port 0 --port-file "$WORK/portF" \
  > "$WORK/sketchdF.log" 2>&1 &
PID2=$!
PORT_F="$(wait_for_port "$WORK/portF")"

# Wait for the follower to bootstrap and subscribe; from then on the
# primary's semi-sync ack gate means every acked record reached it.
i=0
while :; do
  "$CLI" remote-stats --port "$PORT_F" > "$WORK/statsF.txt" 2>/dev/null || true
  grep -q '^repl_connected 1' "$WORK/statsF.txt" && break
  i=$((i + 1))
  [ "$i" -le 100 ] || {
    echo "follower never connected"; cat "$WORK/statsF.txt"; exit 1; }
  sleep 0.1
done
grep -q '^role follower' "$WORK/statsF.txt"

head -5000 "$WORK/values.txt" | "$CLI" remote-ingest --port "$PORT_P" \
  --series repl.latency --timestamp 100

# The reference answer comes from the primary while it is still alive...
"$CLI" remote-query --port "$PORT_P" --series repl.latency \
  --start 0 --end 200 0.5 0.95 0.99 > "$WORK/qP.txt"
[ -s "$WORK/qP.txt" ]

# ... then kill -9 it (no shutdown hook) and promote the follower.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
"$CLI" remote-promote --port "$PORT_F" > "$WORK/promote.txt" 2>&1
grep -q '^promoted: fence_token' "$WORK/promote.txt"

# Every acked record survived the failover: the promoted follower
# answers byte-identically to the dead primary, and accepts writes now
# that it holds the fencing token.
"$CLI" remote-query --port "$PORT_F" --series repl.latency \
  --start 0 --end 200 0.5 0.95 0.99 > "$WORK/qF.txt"
cmp "$WORK/qP.txt" "$WORK/qF.txt"
echo "3.25" | "$CLI" remote-ingest --port "$PORT_F" --series repl.latency \
  --timestamp 150
"$CLI" remote-stats --port "$PORT_F" > "$WORK/statsF2.txt"
grep -q '^role primary' "$WORK/statsF2.txt"

# The deposed primary's directory carries a stale fencing token: brought
# back as a follower of the new primary it may resync, but a direct
# write to it must be refused with FENCED.
"$SKETCHD" --data-dir "$WORK/dataP" --role follower \
  --follow "127.0.0.1:$PORT_F" --port 0 --port-file "$WORK/portP2" \
  > "$WORK/sketchdP2.log" 2>&1 &
PID=$!
PORT_P2="$(wait_for_port "$WORK/portP2")"
if echo "9.5" | "$CLI" remote-ingest --port "$PORT_P2" \
     --series repl.latency --timestamp 160 > "$WORK/fenced.txt" 2>&1; then
  echo "stale ex-primary accepted a write"; exit 1
fi
grep -q 'FENCED' "$WORK/fenced.txt"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
kill "$PID2"
wait "$PID2" 2>/dev/null || true
PID2=""

# --- 5: rollup retention pass ----------------------------------------------
# Two daemons fed the identical aged stream: one with a 10s→10m rollup
# ladder (raw kept 10 minutes), one pinned to a single never-folding
# level. remote-compact must (a) leave every coarse-window answer
# byte-identical, (b) shrink the laddered snapshot at least 4x below the
# flat one (the fold merges 60 sketches into one; the merged sketches
# are denser, so the byte win is smaller than 60x but well past 4x),
# (c) expose per-level rows
# in remote-stats, and (d) survive a SIGKILL + restart byte-identically
# (rollup state lives only in snapshots, so recovery replays cleanly).
awk '{ print NR * 3, $0 }' "$WORK/values.txt" > "$WORK/aged.txt"

"$SKETCHD" --data-dir "$WORK/dataR" --rollup-levels 10s,10m \
  --retention 10m,inf --port 0 --port-file "$WORK/portR" \
  > "$WORK/sketchdR.log" 2>&1 &
PID=$!
PORT_R="$(wait_for_port "$WORK/portR")"
"$SKETCHD" --data-dir "$WORK/dataB" --rollup-levels 10s --retention inf \
  --port 0 --port-file "$WORK/portB" > "$WORK/sketchdB.log" 2>&1 &
PID2=$!
PORT_B="$(wait_for_port "$WORK/portB")"

"$CLI" remote-ingest --port "$PORT_R" --series aged.latency < "$WORK/aged.txt"
"$CLI" remote-ingest --port "$PORT_B" --series aged.latency < "$WORK/aged.txt"

# Window [0, 30600) is aligned to the 600s coarse interval, so rollup
# is invisible to it by construction.
"$CLI" remote-query --port "$PORT_R" --series aged.latency \
  --start 0 --end 30600 0.5 0.9 0.95 0.99 > "$WORK/qR.txt"
"$CLI" remote-query --port "$PORT_B" --series aged.latency \
  --start 0 --end 30600 0.5 0.9 0.95 0.99 > "$WORK/qB.txt"
cmp "$WORK/qR.txt" "$WORK/qB.txt"

# Fold both (the flat daemon's compact folds nothing but still
# checkpoints, leaving both stores snapshot-resident and comparable).
"$CLI" remote-compact --port "$PORT_R" > "$WORK/compactR.txt"
cat "$WORK/compactR.txt"
COMPACTED="$(awk '$1 == "compacted" { print $2 }' "$WORK/compactR.txt")"
[ "${COMPACTED:-0}" -gt 0 ] || { echo "rollup compact folded nothing"; exit 1; }
"$CLI" remote-compact --port "$PORT_B" > /dev/null

"$CLI" remote-query --port "$PORT_R" --series aged.latency \
  --start 0 --end 30600 0.5 0.9 0.95 0.99 > "$WORK/qR2.txt"
cmp "$WORK/qR.txt" "$WORK/qR2.txt"

# Per-level visibility: two rows, geometry as configured, folds counted
# only into the coarse level.
"$CLI" remote-stats --port "$PORT_R" > "$WORK/statsR.txt"
grep -q '^level 0 interval_s=10 retention_s=600 ' "$WORK/statsR.txt" || {
  echo "remote-stats lacks the raw level row"; cat "$WORK/statsR.txt"; exit 1; }
grep -Eq '^level 1 interval_s=600 retention_s=0 intervals=[1-9][0-9]* rollup_merges=[1-9][0-9]*' \
  "$WORK/statsR.txt" || {
  echo "remote-stats lacks a folded coarse level row"; cat "$WORK/statsR.txt"; exit 1; }

# The on-disk win: the rolled-up snapshot must be at least 4x smaller
# than the never-folded one (sixty 10s sketches merged into each 10m
# sketch; identical answers above prove nothing was lost that a coarse
# window could see).
SR="$(wc -c < "$WORK/dataR/snapshot.dds")"
SB="$(wc -c < "$WORK/dataB/snapshot.dds")"
[ $((SR * 4)) -le "$SB" ] || {
  echo "rollup snapshot $SR bytes, flat $SB: shrink < 4x"; exit 1; }

# SIGKILL the rolled-up daemon; restart must recover the folded store
# and answer byte-identically.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
"$SKETCHD" --data-dir "$WORK/dataR" --rollup-levels 10s,10m \
  --retention 10m,inf --port 0 --port-file "$WORK/portR2" \
  > "$WORK/sketchdR2.log" 2>&1 &
PID=$!
PORT_R="$(wait_for_port "$WORK/portR2")"
"$CLI" remote-query --port "$PORT_R" --series aged.latency \
  --start 0 --end 30600 0.5 0.9 0.95 0.99 > "$WORK/qR3.txt"
cmp "$WORK/qR.txt" "$WORK/qR3.txt"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
kill "$PID2" 2>/dev/null || true
wait "$PID2" 2>/dev/null || true
PID2=""

# --- 6: per-tag admission pass ---------------------------------------------
"$SKETCHD" --data-dir "$WORK/dataT" --tag-budget "gold=3,bronze=1" \
  --port 0 --port-file "$WORK/portT" > "$WORK/sketchdT.log" 2>&1 &
PID=$!
PORT_T="$(wait_for_port "$WORK/portT")"

# Two tagged tenants ingest through remote-stress. Neither approaches
# its ledger's floor at this rate, so every record must be acked and
# each run's summary line must name the ledger it was charged to.
"$CLI" remote-stress --port "$PORT_T" --series tenant.gold --tag gold \
  --idle-conns 0 --hot-conns 2 --count 1000 > "$WORK/stressG.txt"
grep -q '^tag_summary gold acked=2000 refused_busy=0$' "$WORK/stressG.txt" || {
  echo "gold stress summary wrong"; cat "$WORK/stressG.txt"; exit 1; }
"$CLI" remote-stress --port "$PORT_T" --series tenant.bronze --tag bronze \
  --idle-conns 0 --hot-conns 1 --count 500 > "$WORK/stressB.txt"
grep -q '^tag_summary bronze acked=500 refused_busy=0$' "$WORK/stressB.txt" || {
  echo "bronze stress summary wrong"; cat "$WORK/stressB.txt"; exit 1; }

# Per-tag visibility over the wire: one row per registered tag, the
# configured weights skew the guaranteed floors, both ledgers drained
# back to zero, and each tag's own ack-latency sketch counted every
# acked record with ordered percentiles.
"$CLI" remote-stats --port "$PORT_T" > "$WORK/statsT.txt"
for t in default gold bronze; do
  grep -q "^tag $t " "$WORK/statsT.txt" || {
    echo "remote-stats lacks tag row $t"; cat "$WORK/statsT.txt"; exit 1; }
done
awk '
  $1 == "tag" {
    tag = $2
    for (i = 3; i <= NF; i++) { split($i, kv, "="); row[tag "." kv[1]] = kv[2] }
  }
  END {
    if (row["gold.floor_bytes"] + 0 < 2 * row["bronze.floor_bytes"]) {
      print "gold floor not weighted 3x over bronze"; exit 1 }
    if (row["gold.staged_bytes"] + 0 != 0 || row["bronze.staged_bytes"] + 0 != 0) {
      print "tag ledgers did not drain"; exit 1 }
    if (row["gold.busy_rejections"] + 0 != 0) {
      print "gold was refused below its floor"; exit 1 }
    if (row["gold.count"] + 0 < 2000) {
      print "gold latency count " row["gold.count"] " < 2000"; exit 1 }
    if (row["gold.p50_us"] + 0 <= 0 || row["gold.p50_us"] + 0 > row["gold.p99_us"] + 0 ||
        row["gold.p99_us"] + 0 > row["gold.p999_us"] + 0) {
      print "gold latency percentiles not ordered"; exit 1 }
  }' "$WORK/statsT.txt" || { cat "$WORK/statsT.txt"; exit 1; }

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "smoke_sketchd OK"
