#include "util/status.h"

#include <gtest/gtest.h>

namespace dd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "INVALID_ARGUMENT"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OUT_OF_RANGE"},
      {Status::Corruption("c"), StatusCode::kCorruption, "CORRUPTION"},
      {Status::Incompatible("d"), StatusCode::kIncompatible, "INCOMPATIBLE"},
      {Status::ResourceExhausted("e"), StatusCode::kResourceExhausted,
       "RESOURCE_EXHAUSTED"},
      {Status::Internal("f"), StatusCode::kInternal, "INTERNAL"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Corruption("x"), Status::Corruption("x"));
  EXPECT_FALSE(Status::Corruption("x") == Status::Corruption("y"));
  EXPECT_FALSE(Status::Corruption("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::OutOfRange("deep"); };
  auto outer = [&]() -> Status {
    DD_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);

  auto succeeds = []() -> Status { return Status::OK(); };
  auto outer_ok = [&]() -> Status {
    DD_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer_ok().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace dd
