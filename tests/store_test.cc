#include "core/store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "util/rng.h"

namespace dd {
namespace {

std::unique_ptr<Store> MakeStore(StoreType type, int32_t max_buckets) {
  auto r = Store::Create(type, max_buckets);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// ---- behaviour shared by every store type (unbounded configuration) -----

class AnyStoreTest : public ::testing::TestWithParam<StoreType> {
 protected:
  std::unique_ptr<Store> Make(int32_t max_buckets = 1 << 20) {
    // Large cap: collapsing stores behave like unbounded ones in these
    // shared tests.
    return MakeStore(GetParam(), max_buckets);
  }
};

TEST_P(AnyStoreTest, EmptyInvariants) {
  auto s = Make();
  EXPECT_TRUE(s->empty());
  EXPECT_EQ(s->total_count(), 0u);
  EXPECT_EQ(s->num_buckets(), 0u);
  int calls = 0;
  s->ForEach([&](int32_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_P(AnyStoreTest, SingleBucket) {
  auto s = Make();
  s->Add(42, 3);
  EXPECT_EQ(s->total_count(), 3u);
  EXPECT_EQ(s->min_index(), 42);
  EXPECT_EQ(s->max_index(), 42);
  EXPECT_EQ(s->num_buckets(), 1u);
  EXPECT_EQ(s->KeyAtRank(0), 42);
  EXPECT_EQ(s->KeyAtRank(2.9), 42);
}

TEST_P(AnyStoreTest, AddZeroCountIsNoOp) {
  auto s = Make();
  s->Add(5, 0);
  EXPECT_TRUE(s->empty());
}

TEST_P(AnyStoreTest, NegativeAndPositiveIndices) {
  auto s = Make();
  s->Add(-100, 1);
  s->Add(0, 2);
  s->Add(100, 3);
  EXPECT_EQ(s->min_index(), -100);
  EXPECT_EQ(s->max_index(), 100);
  EXPECT_EQ(s->total_count(), 6u);
  EXPECT_EQ(s->num_buckets(), 3u);
}

TEST_P(AnyStoreTest, ForEachAscendingAndComplete) {
  auto s = Make();
  Rng rng(11);
  std::map<int32_t, uint64_t> expected;
  for (int i = 0; i < 2000; ++i) {
    const int32_t index = static_cast<int32_t>(rng.NextBounded(400)) - 200;
    const uint64_t count = 1 + rng.NextBounded(5);
    expected[index] += count;
    s->Add(index, count);
  }
  std::map<int32_t, uint64_t> seen;
  int32_t prev = INT32_MIN;
  s->ForEach([&](int32_t index, uint64_t count) {
    EXPECT_GT(index, prev);
    prev = index;
    seen[index] = count;
  });
  EXPECT_EQ(seen, expected);
}

TEST_P(AnyStoreTest, KeyAtRankMatchesLinearScan) {
  auto s = Make();
  Rng rng(12);
  std::map<int32_t, uint64_t> model;
  for (int i = 0; i < 500; ++i) {
    const int32_t index = static_cast<int32_t>(rng.NextBounded(100)) - 50;
    model[index] += 1;
    s->Add(index, 1);
  }
  const uint64_t n = s->total_count();
  for (double rank : {0.0, 0.5, 10.0, 250.0, 499.0, n - 1.0}) {
    uint64_t cum = 0;
    int32_t expected = model.rbegin()->first;
    for (const auto& [index, count] : model) {
      cum += count;
      if (static_cast<double>(cum) > rank) {
        expected = index;
        break;
      }
    }
    EXPECT_EQ(s->KeyAtRank(rank), expected) << "rank=" << rank;
  }
}

TEST_P(AnyStoreTest, KeyAtRankDescendingMirrors) {
  auto s = Make();
  s->Add(1, 10);
  s->Add(2, 10);
  s->Add(3, 10);
  // Descending: ranks 0..9 -> 3, 10..19 -> 2, 20..29 -> 1.
  EXPECT_EQ(s->KeyAtRankDescending(0), 3);
  EXPECT_EQ(s->KeyAtRankDescending(9.5), 3);
  EXPECT_EQ(s->KeyAtRankDescending(10), 2);
  EXPECT_EQ(s->KeyAtRankDescending(25), 1);
}

TEST_P(AnyStoreTest, CumulativeCountMatchesModel) {
  auto s = Make();
  Rng rng(14);
  std::map<int32_t, uint64_t> model;
  for (int i = 0; i < 1000; ++i) {
    const int32_t index = static_cast<int32_t>(rng.NextBounded(200)) - 100;
    const uint64_t count = 1 + rng.NextBounded(4);
    model[index] += count;
    s->Add(index, count);
  }
  for (int32_t probe = -120; probe <= 120; probe += 3) {
    uint64_t expected = 0;
    for (const auto& [index, count] : model) {
      if (index <= probe) expected += count;
    }
    EXPECT_EQ(s->CumulativeCount(probe), expected) << probe;
  }
  EXPECT_EQ(s->CumulativeCount(INT32_MAX), s->total_count());
  EXPECT_EQ(s->CumulativeCount(INT32_MIN), 0u);
}

TEST_P(AnyStoreTest, CumulativeCountInvertsKeyAtRank) {
  auto s = Make();
  Rng rng(15);
  for (int i = 0; i < 500; ++i) {
    s->Add(static_cast<int32_t>(rng.NextBounded(60)), 1);
  }
  for (double rank : {0.0, 10.0, 100.0, 499.0}) {
    const int32_t key = s->KeyAtRank(rank);
    // The cumulative count through `key` must exceed the rank, and the
    // cumulative count below must not.
    EXPECT_GT(static_cast<double>(s->CumulativeCount(key)), rank);
    EXPECT_LE(static_cast<double>(s->CumulativeCount(key - 1)), rank);
  }
}

TEST_P(AnyStoreTest, RemoveDecrements) {
  auto s = Make();
  s->Add(7, 5);
  EXPECT_EQ(s->Remove(7, 2), 2u);
  EXPECT_EQ(s->total_count(), 3u);
  EXPECT_EQ(s->Remove(7, 10), 3u);  // clamped at what's present
  EXPECT_TRUE(s->empty());
  EXPECT_EQ(s->Remove(7, 1), 0u);  // nothing left
  EXPECT_EQ(s->Remove(99, 1), 0u);  // never present
}

TEST_P(AnyStoreTest, RemoveUpdatesExtremes) {
  auto s = Make();
  s->Add(1, 1);
  s->Add(5, 1);
  s->Add(9, 1);
  EXPECT_EQ(s->Remove(9, 1), 1u);
  EXPECT_EQ(s->max_index(), 5);
  EXPECT_EQ(s->Remove(1, 1), 1u);
  EXPECT_EQ(s->min_index(), 5);
}

TEST_P(AnyStoreTest, ClearResets) {
  auto s = Make();
  s->Add(3, 4);
  s->Clear();
  EXPECT_TRUE(s->empty());
  EXPECT_EQ(s->num_buckets(), 0u);
  s->Add(-8, 1);  // usable after clear
  EXPECT_EQ(s->min_index(), -8);
}

TEST_P(AnyStoreTest, CloneIsDeepAndEqual) {
  auto s = Make();
  s->Add(1, 2);
  s->Add(10, 3);
  auto c = s->Clone();
  s->Add(20, 5);  // original diverges
  EXPECT_EQ(c->total_count(), 5u);
  EXPECT_EQ(c->max_index(), 10);
  EXPECT_EQ(s->total_count(), 10u);
}

TEST_P(AnyStoreTest, MergeMatchesSequentialAdds) {
  Rng rng(13);
  auto merged = Make();
  auto reference = Make();
  auto other = Make();
  for (int i = 0; i < 3000; ++i) {
    const int32_t index = static_cast<int32_t>(rng.NextBounded(300)) - 150;
    if (i % 2 == 0) {
      merged->Add(index, 1);
    } else {
      other->Add(index, 1);
    }
    reference->Add(index, 1);
  }
  merged->MergeFrom(*other);
  EXPECT_EQ(merged->total_count(), reference->total_count());
  std::map<int32_t, uint64_t> a, b;
  merged->ForEach([&](int32_t i, uint64_t c) { a[i] = c; });
  reference->ForEach([&](int32_t i, uint64_t c) { b[i] = c; });
  EXPECT_EQ(a, b);
}

TEST_P(AnyStoreTest, SizeInBytesIsPositiveAndGrows) {
  auto s = Make();
  const size_t empty_size = s->size_in_bytes();
  EXPECT_GT(empty_size, 0u);
  for (int i = 0; i < 1000; ++i) s->Add(i, 1);
  EXPECT_GT(s->size_in_bytes(), empty_size);
}

INSTANTIATE_TEST_SUITE_P(AllStores, AnyStoreTest,
                         ::testing::Values(StoreType::kUnboundedDense,
                                           StoreType::kCollapsingLowestDense,
                                           StoreType::kCollapsingHighestDense,
                                           StoreType::kSparse),
                         [](const ::testing::TestParamInfo<StoreType>& info) {
                           return StoreTypeToString(info.param);
                         });

// ---- collapse semantics ---------------------------------------------------

TEST(CollapsingLowestTest, FoldsLowIndicesWhenSpanExceeded) {
  CollapsingLowestDenseStore s(/*max_num_buckets=*/4);
  for (int32_t i = 0; i < 8; ++i) s.Add(i, 1);
  // Span capped at 4: indices 0..4 folded into 4.
  EXPECT_EQ(s.total_count(), 8u);
  EXPECT_TRUE(s.has_collapsed());
  EXPECT_EQ(s.min_index(), 4);
  EXPECT_EQ(s.max_index(), 7);
  std::map<int32_t, uint64_t> got;
  s.ForEach([&](int32_t i, uint64_t c) { got[i] = c; });
  const std::map<int32_t, uint64_t> expected = {{4, 5}, {5, 1}, {6, 1}, {7, 1}};
  EXPECT_EQ(got, expected);
}

TEST(CollapsingLowestTest, LowIncomingValueRedirected) {
  CollapsingLowestDenseStore s(4);
  s.Add(100, 1);
  s.Add(103, 1);
  s.Add(0, 7);  // far below the window [100, 103]: folds to its bottom
  EXPECT_EQ(s.min_index(), 100);
  std::map<int32_t, uint64_t> got;
  s.ForEach([&](int32_t i, uint64_t c) { got[i] = c; });
  const std::map<int32_t, uint64_t> expected = {{100, 8}, {103, 1}};
  EXPECT_EQ(got, expected);
}

TEST(CollapsingLowestTest, NoCollapseWithinBound) {
  CollapsingLowestDenseStore s(10);
  for (int32_t i = 0; i < 10; ++i) s.Add(i, 1);
  EXPECT_FALSE(s.has_collapsed());
  EXPECT_EQ(s.num_buckets(), 10u);
}

TEST(CollapsingLowestTest, UpperBucketsExactAfterCollapse) {
  // Collapse must never disturb counts above the fold boundary.
  CollapsingLowestDenseStore s(8);
  for (int32_t i = 0; i < 100; ++i) s.Add(i, 1);
  uint64_t above = 0;
  s.ForEach([&](int32_t i, uint64_t c) {
    if (i > 92) {
      above += c;
      EXPECT_EQ(c, 1u) << i;
    }
  });
  EXPECT_EQ(above, 7u);
  EXPECT_EQ(s.total_count(), 100u);
}

TEST(CollapsingHighestTest, FoldsHighIndices) {
  CollapsingHighestDenseStore s(4);
  for (int32_t i = 0; i < 8; ++i) s.Add(i, 1);
  EXPECT_TRUE(s.has_collapsed());
  EXPECT_EQ(s.min_index(), 0);
  EXPECT_EQ(s.max_index(), 3);
  std::map<int32_t, uint64_t> got;
  s.ForEach([&](int32_t i, uint64_t c) { got[i] = c; });
  const std::map<int32_t, uint64_t> expected = {{0, 1}, {1, 1}, {2, 1}, {3, 5}};
  EXPECT_EQ(got, expected);
}

TEST(CollapsingHighestTest, HighIncomingValueRedirected) {
  CollapsingHighestDenseStore s(4);
  s.Add(0, 1);
  s.Add(3, 1);
  s.Add(50, 9);
  EXPECT_EQ(s.max_index(), 3);
  std::map<int32_t, uint64_t> got;
  s.ForEach([&](int32_t i, uint64_t c) { got[i] = c; });
  const std::map<int32_t, uint64_t> expected = {{0, 1}, {3, 10}};
  EXPECT_EQ(got, expected);
}

TEST(SparseBoundedTest, PaperLiteralCollapseOnNonEmptyCount) {
  // Algorithm 3: the bound is on *non-empty* buckets; the two lowest merge.
  SparseStore s(/*max_num_buckets=*/3);
  s.Add(10, 1);
  s.Add(20, 2);
  s.Add(30, 3);
  EXPECT_EQ(s.num_buckets(), 3u);
  s.Add(40, 4);  // exceeds: buckets 10 and 20 merge into 20
  EXPECT_EQ(s.num_buckets(), 3u);
  std::map<int32_t, uint64_t> got;
  s.ForEach([&](int32_t i, uint64_t c) { got[i] = c; });
  const std::map<int32_t, uint64_t> expected = {{20, 3}, {30, 3}, {40, 4}};
  EXPECT_EQ(got, expected);
}

TEST(SparseBoundedTest, WideSpanFineWhileFewBuckets) {
  // Contrast with the dense collapsing store: span doesn't matter, only
  // the bucket count.
  SparseStore s(3);
  s.Add(-1000000, 1);
  s.Add(0, 1);
  s.Add(1000000, 1);
  EXPECT_EQ(s.num_buckets(), 3u);
  EXPECT_EQ(s.min_index(), -1000000);
  EXPECT_EQ(s.max_index(), 1000000);
}

TEST(CollapseEquivalenceTest, MergeOrderIndependent) {
  // Fully-mergeable property at the store level: merging in any order and
  // adding everything to one store agree bucket-for-bucket.
  Rng rng(21);
  std::vector<std::pair<int32_t, uint64_t>> all;
  for (int i = 0; i < 4000; ++i) {
    all.emplace_back(static_cast<int32_t>(rng.NextBounded(3000)),
                     1 + rng.NextBounded(3));
  }
  CollapsingLowestDenseStore single(128);
  for (auto [i, c] : all) single.Add(i, c);

  CollapsingLowestDenseStore parts[4] = {
      CollapsingLowestDenseStore(128), CollapsingLowestDenseStore(128),
      CollapsingLowestDenseStore(128), CollapsingLowestDenseStore(128)};
  for (size_t i = 0; i < all.size(); ++i) {
    parts[i % 4].Add(all[i].first, all[i].second);
  }
  // Merge in a skewed order: ((3 <- 1), (0 <- 2)), then 3 <- 0.
  parts[3].MergeFrom(parts[1]);
  parts[0].MergeFrom(parts[2]);
  parts[3].MergeFrom(parts[0]);

  std::map<int32_t, uint64_t> got, expected;
  parts[3].ForEach([&](int32_t i, uint64_t c) { got[i] = c; });
  single.ForEach([&](int32_t i, uint64_t c) { expected[i] = c; });
  EXPECT_EQ(got, expected);
}

TEST(CollapsingLowestTest, AddRemoveRoundTripThroughFoldBoundary) {
  // Regression: Remove used to check only the raw [min_index, max_index]
  // bounds, so a value whose Add was redirected into the fold bucket
  // could never be removed (or, pre-collapse state permitting, drained
  // the wrong bucket). Remove now redirects through the same boundary.
  CollapsingLowestDenseStore store(4);
  for (int32_t i = 6; i <= 9; ++i) store.Add(i, 1);  // saturate [6, 9]
  store.Add(2, 1);  // below the window: folded into bucket 6
  EXPECT_EQ(store.total_count(), 5u);
  EXPECT_EQ(store.CumulativeCount(6), 2u);
  EXPECT_EQ(store.Remove(2, 1), 1u);  // mirrors the Add redirect
  EXPECT_EQ(store.total_count(), 4u);
  EXPECT_EQ(store.CumulativeCount(6), 1u);
}

TEST(CollapsingLowestTest, RemoveBelowWindowWithoutCollapseRejects) {
  // The redirect must not fire while the store is still lossless: with no
  // fold ever performed, a below-window index was simply never added, and
  // draining the boundary bucket would delete a different value's mass.
  CollapsingLowestDenseStore store(4);
  for (int32_t i = 6; i <= 9; ++i) store.Add(i, 1);  // saturated, lossless
  ASSERT_FALSE(store.has_collapsed());
  EXPECT_EQ(store.Remove(2, 1), 0u);
  EXPECT_EQ(store.total_count(), 4u);
  EXPECT_EQ(store.CumulativeCount(6), 1u);
}

TEST(CollapsingLowestTest, ClearResetsCollapseStateForRemoveRedirect) {
  // Clear() must reset the fold history: a refilled store that has lost
  // nothing since the Clear must reject below-window removals again
  // rather than redirect them into the boundary bucket.
  CollapsingLowestDenseStore store(4);
  for (int32_t i = 6; i <= 9; ++i) store.Add(i, 1);
  store.Add(2, 1);  // collapse
  ASSERT_TRUE(store.has_collapsed());
  store.Clear();
  EXPECT_FALSE(store.has_collapsed());
  for (int32_t i = 6; i <= 9; ++i) store.Add(i, 1);  // lossless refill
  EXPECT_EQ(store.Remove(2, 1), 0u);
  EXPECT_EQ(store.total_count(), 4u);
}

TEST(CollapsingLowestTest, FoldRedirectSurvivesWindowDrift) {
  // The redirect targets the recorded fold bucket, not a boundary
  // recomputed from the live window: draining the top bucket shrinks
  // max_index, and a drifting derivation would point below the window
  // and strand the folded mass forever.
  CollapsingLowestDenseStore store(4);
  for (int32_t i = 6; i <= 9; ++i) store.Add(i, 1);
  store.Add(2, 1);                    // folded into bucket 6
  EXPECT_EQ(store.Remove(9, 1), 1u);  // window max drifts down to 8
  EXPECT_EQ(store.Remove(2, 1), 1u);  // still finds the folded mass at 6
  EXPECT_EQ(store.total_count(), 3u);
}

TEST(CollapsingLowestTest, InWindowBucketBelowFoldIsNotRedirected) {
  // After removals shrink the window, a later add below the fold bucket
  // can land at its true index again. Removing that index must hit its
  // own (in-window) bucket, not the fold bucket.
  CollapsingLowestDenseStore store(4);
  for (int32_t i = 6; i <= 9; ++i) store.Add(i, 1);
  store.Add(2, 1);                    // collapse; fold bucket 6 holds 2
  EXPECT_EQ(store.Remove(9, 1), 1u);  // window shrinks to [6, 8]
  store.Add(5, 1);                    // span [5, 8] fits: true bucket 5
  EXPECT_EQ(store.Remove(5, 1), 1u);  // drains bucket 5, not bucket 6
  EXPECT_EQ(store.CumulativeCount(6) - store.CumulativeCount(5), 2u);
}

TEST(CollapsingLowestTest, MergePropagatesFoldStateForRemove) {
  // Folded mass merged into another store must stay removable: the
  // direct dense-to-dense merge carries the source's fold state along
  // with its counts.
  CollapsingLowestDenseStore src(4);
  for (int32_t i = 6; i <= 9; ++i) src.Add(i, 1);
  src.Add(2, 1);  // collapse: fold bucket 6 holds 2
  CollapsingLowestDenseStore dst(4);
  dst.MergeFrom(src);
  EXPECT_EQ(dst.Remove(2, 1), 1u);  // redirect active on the merged store
  EXPECT_EQ(dst.total_count(), 4u);
}

TEST(CollapsingLowestTest, CrossDirectionMergeDoesNotAdoptFoldState) {
  // A mirror-type source's fold bucket sits on the wrong side of the
  // destination's window; adopting it would let RemoveTarget redirect a
  // never-added low index into a live high bucket and drain it.
  CollapsingHighestDenseStore src(4);
  for (int32_t i = 50; i <= 53; ++i) src.Add(i, 1);
  src.Add(100, 1);  // collapse downward: fold bucket 53
  CollapsingLowestDenseStore dst(64);
  dst.MergeFrom(src);
  EXPECT_EQ(dst.Remove(10, 1), 0u);  // below-window index stays rejected
  EXPECT_EQ(dst.total_count(), 5u);
}

TEST(CollapsingHighestTest, AddRemoveRoundTripThroughFoldBoundary) {
  CollapsingHighestDenseStore store(4);
  for (int32_t i = 1; i <= 4; ++i) store.Add(i, 1);  // saturate [1, 4]
  store.Add(9, 1);  // above the window: folded into bucket 4
  EXPECT_EQ(store.total_count(), 5u);
  EXPECT_EQ(store.Remove(9, 1), 1u);
  EXPECT_EQ(store.total_count(), 4u);
  EXPECT_EQ(store.Remove(9, 1), 1u);  // drains the fold bucket's own mass
  EXPECT_EQ(store.total_count(), 3u);
}

TEST(CollapsingLowestTest, RandomAddRemoveRoundTripConservesTotal) {
  // Adding a multiset (collapsing along the way) and then removing the
  // exact same multiset drains the store back to empty: every remove
  // finds its mass where the fold redirect put it. Removal runs in
  // ascending index order — the fold boundary tracks the live maximum,
  // so draining the top first would move the boundary away from the
  // folded mass (the same caveat class as the paper's collapsed
  // quantiles).
  Rng rng(77);
  CollapsingLowestDenseStore store(16);
  std::vector<int32_t> added;
  for (int i = 0; i < 500; ++i) {
    const int32_t index = static_cast<int32_t>(rng.NextBounded(400));
    store.Add(index, 1);
    added.push_back(index);
  }
  EXPECT_TRUE(store.has_collapsed());
  EXPECT_EQ(store.total_count(), 500u);
  std::sort(added.begin(), added.end());
  for (int32_t index : added) {
    EXPECT_EQ(store.Remove(index, 1), 1u) << index;
  }
  EXPECT_EQ(store.total_count(), 0u);
}

// Wraps a SparseStore but counts how many buckets each ascending walk
// touches: the probe for asserting that the generic (visitor-based) rank
// queries stop at the answering bucket.
class VisitCountingSparseStore final : public Store {
 public:
  void Add(int32_t index, uint64_t count) override { inner_.Add(index, count); }
  uint64_t Remove(int32_t index, uint64_t count) override {
    return inner_.Remove(index, count);
  }
  uint64_t total_count() const noexcept override {
    return inner_.total_count();
  }
  int32_t min_index() const noexcept override { return inner_.min_index(); }
  int32_t max_index() const noexcept override { return inner_.max_index(); }
  size_t num_buckets() const noexcept override { return inner_.num_buckets(); }
  bool ForEach(BucketVisitor fn) const override {
    return inner_.ForEach([&](int32_t index, uint64_t count) -> bool {
      ++visited;
      return fn(index, count);
    });
  }
  size_t size_in_bytes() const noexcept override {
    return inner_.size_in_bytes();
  }
  void Clear() noexcept override { inner_.Clear(); }
  StoreType type() const noexcept override { return StoreType::kSparse; }
  std::unique_ptr<Store> Clone() const override {
    return std::make_unique<VisitCountingSparseStore>(*this);
  }

  mutable size_t visited = 0;

 private:
  SparseStore inner_;
};

TEST(StoreVisitorTest, KeyAtRankStopsAtAnsweringBucket) {
  // Regression: the std::function-based walk could not stop early, so
  // sparse-store rank queries kept iterating the full bucket map after
  // the target rank was found (the `found` flag only skipped the callback
  // body). The visitor walk must touch no bucket past the answer.
  VisitCountingSparseStore store;
  for (int32_t i = 0; i < 100; ++i) store.Add(i, 1);
  store.visited = 0;
  EXPECT_EQ(store.KeyAtRank(4.5), 4);  // cumulative 5 > 4.5 at bucket 4
  EXPECT_EQ(store.visited, 5u);
  store.visited = 0;
  EXPECT_EQ(store.KeyAtRank(0), 0);
  EXPECT_EQ(store.visited, 1u);
}

TEST(StoreVisitorTest, CumulativeCountStopsPastIndex) {
  VisitCountingSparseStore store;
  for (int32_t i = 0; i < 100; ++i) store.Add(i, 1);
  store.visited = 0;
  EXPECT_EQ(store.CumulativeCount(10), 11u);
  // Visits buckets 0..10 plus the one probe at 11 that stops the walk.
  EXPECT_EQ(store.visited, 12u);
}

TEST(StoreVisitorTest, ForEachEarlyTerminationReturnsFalse) {
  auto s = MakeStore(StoreType::kSparse, 0);
  for (int32_t i = 0; i < 10; ++i) s->Add(i, 1);
  int seen = 0;
  const bool completed = s->ForEach([&](int32_t, uint64_t) -> bool {
    return ++seen < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 3);
  seen = 0;
  EXPECT_TRUE(s->ForEachDescending([&](int32_t index, uint64_t) {
    EXPECT_EQ(index, 9 - seen);
    ++seen;
  }));
  EXPECT_EQ(seen, 10);
}

TEST(StoreFactoryTest, Validation) {
  EXPECT_FALSE(Store::Create(StoreType::kCollapsingLowestDense, 0).ok());
  EXPECT_FALSE(Store::Create(StoreType::kCollapsingHighestDense, -1).ok());
  EXPECT_TRUE(Store::Create(StoreType::kSparse, 0).ok());  // 0 = unbounded
  EXPECT_TRUE(Store::Create(StoreType::kUnboundedDense, 0).ok());
}

TEST(StoreStressTest, DenseHandlesAdversarialGrowthPattern) {
  // Alternating far-apart indices force repeated two-sided growth.
  UnboundedDenseStore s;
  for (int i = 1; i <= 200; ++i) {
    s.Add(i * 37, 1);
    s.Add(-i * 41, 1);
  }
  EXPECT_EQ(s.total_count(), 400u);
  EXPECT_EQ(s.min_index(), -200 * 41);
  EXPECT_EQ(s.max_index(), 200 * 37);
  EXPECT_EQ(s.num_buckets(), 400u);
}

}  // namespace
}  // namespace dd
