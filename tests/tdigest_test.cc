#include "tdigest/tdigest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace dd {
namespace {

TDigest Make(double compression = 100.0) {
  auto r = TDigest::Create(compression);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(TDigestTest, CreateValidation) {
  EXPECT_FALSE(TDigest::Create(1.0).ok());
  EXPECT_FALSE(TDigest::Create(1e6).ok());
  EXPECT_TRUE(TDigest::Create(100).ok());
}

TEST(TDigestTest, EmptyAndValidation) {
  TDigest t = Make();
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Quantile(0.5).ok());
  t.Add(1.0);
  EXPECT_FALSE(t.Quantile(-0.5).ok());
  EXPECT_FALSE(t.Quantile(1.5).ok());
}

TEST(TDigestTest, SingleAndConstant) {
  TDigest t = Make();
  t.Add(5.0);
  for (double q : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(t.QuantileOrNaN(q), 5.0);
  TDigest c = Make();
  for (int i = 0; i < 10000; ++i) c.Add(3.0);
  for (double q : {0.0, 0.37, 1.0}) EXPECT_DOUBLE_EQ(c.QuantileOrNaN(q), 3.0);
}

TEST(TDigestTest, ExactExtremes) {
  TDigest t = Make();
  Rng rng(151);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble() * 1e6 - 5e5;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    t.Add(x);
  }
  EXPECT_EQ(t.QuantileOrNaN(0.0), lo);
  EXPECT_EQ(t.QuantileOrNaN(1.0), hi);
}

TEST(TDigestTest, CentroidCountBounded) {
  TDigest t = Make(100);
  Rng rng(152);
  for (int i = 0; i < 1000000; ++i) t.Add(rng.NextDouble());
  // The k1 scale function bounds live centroids to ~2 * compression.
  EXPECT_LT(t.num_centroids(), 220u);
  EXPECT_GT(t.num_centroids(), 30u);
  EXPECT_LT(t.size_in_bytes(), 64 * 1024u);
}

TEST(TDigestTest, UniformRankAccuracy) {
  TDigest t = Make(100);
  std::vector<double> data(500000);
  Rng rng(153);
  for (double& x : data) {
    x = rng.NextDouble() * 1000;
    t.Add(x);
  }
  ExactQuantiles truth(data);
  // Mid quantiles: rank error well under 1%; tails much tighter (the
  // biased-accuracy design goal).
  EXPECT_LE(RankError(truth, 0.5, t.QuantileOrNaN(0.5)), 0.01);
  EXPECT_LE(RankError(truth, 0.99, t.QuantileOrNaN(0.99)), 0.002);
  EXPECT_LE(RankError(truth, 0.999, t.QuantileOrNaN(0.999)), 0.0005);
}

TEST(TDigestTest, TailsBeatMidstreamInRankError) {
  // The defining property of the k1 scale function: resolution is
  // concentrated at the tails.
  TDigest t = Make(100);
  const auto data = GenerateDataset(DatasetId::kWebLatency, 300000);
  for (double x : data) t.Add(x);
  ExactQuantiles truth(data);
  // Tail rank error must be an order of magnitude under the uniform
  // budget; mid-stream merely has to stay within the conventional 1/delta.
  for (double q : {0.999, 0.9995, 0.0005, 0.001}) {
    EXPECT_LE(RankError(truth, q, t.QuantileOrNaN(q)), 0.002) << q;
  }
  for (double q : {0.4, 0.5, 0.6}) {
    EXPECT_LE(RankError(truth, q, t.QuantileOrNaN(q)), 0.01) << q;
  }
}

TEST(TDigestTest, HighRelativeErrorOnHeavyTailsAsPaperClaims) {
  // §1.2: t-digest-style sketches "still have high relative error on
  // heavy-tailed data sets" — the gap DDSketch closes.
  TDigest t = Make(100);
  const auto data = GenerateDataset(DatasetId::kSpan, 500000);
  for (double x : data) t.Add(x);
  ExactQuantiles truth(data);
  double worst = 0;
  for (double q : {0.5, 0.75, 0.9}) {
    worst = std::max(worst,
                     RelativeError(t.QuantileOrNaN(q), truth.Quantile(q)));
  }
  EXPECT_GT(worst, 0.01);  // beyond what DDSketch guarantees everywhere
}

TEST(TDigestTest, WeightedAddMatchesRepeated) {
  TDigest a = Make(), b = Make();
  Rng rng(154);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.NextDouble() * 50;
    const uint64_t w = 1 + rng.NextBounded(30);
    a.Add(x, w);
    for (uint64_t j = 0; j < w; ++j) b.Add(x);
  }
  EXPECT_EQ(a.count(), b.count());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(a.QuantileOrNaN(q), b.QuantileOrNaN(q),
                0.05 * b.QuantileOrNaN(q) + 1e-9)
        << q;
  }
}

TEST(TDigestTest, MergePreservesDistribution) {
  TDigest a = Make(), b = Make();
  std::vector<double> all;
  Rng rng(155);
  for (int i = 0; i < 200000; ++i) {
    const double x = std::exp(rng.NextDouble() * 4);
    all.push_back(x);
    (i % 2 ? a : b).Add(x);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), all.size());
  ExactQuantiles truth(all);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(RankError(truth, q, a.QuantileOrNaN(q)), 0.02) << q;
  }
}

TEST(TDigestTest, RejectsNonFinite) {
  TDigest t = Make();
  t.Add(std::nan(""));
  t.Add(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rejected_count(), 2u);
}

TEST(TDigestTest, MonotoneQuantiles) {
  TDigest t = Make();
  Rng rng(156);
  for (int i = 0; i < 100000; ++i) t.Add(std::exp(rng.NextDouble() * 10));
  double prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.005) {
    const double v = t.QuantileOrNaN(q);
    EXPECT_GE(v, prev) << q;
    prev = v;
  }
}

TEST(TDigestTest, SortedInputStress) {
  TDigest t = Make();
  std::vector<double> data(200000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i);
    t.Add(data[i]);
  }
  ExactQuantiles truth(data);
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_LE(RankError(truth, q, t.QuantileOrNaN(q)), 0.01) << q;
  }
}

}  // namespace
}  // namespace dd
