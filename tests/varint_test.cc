#include "util/varint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace dd {
namespace {

TEST(VarintTest, EncodesSmallValuesInOneByte) {
  for (uint64_t v : {0ULL, 1ULL, 42ULL, 127ULL}) {
    std::string out;
    PutVarint64(&out, v);
    EXPECT_EQ(out.size(), 1u) << v;
  }
}

TEST(VarintTest, EncodedSizeGrowsWithMagnitude) {
  std::string one, two, ten;
  PutVarint64(&one, 127);
  PutVarint64(&two, 128);
  PutVarint64(&ten, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(ten.size(), 10u);
}

TEST(VarintTest, RoundTripBoundaryValues) {
  const uint64_t cases[] = {
      0,       1,          127,        128,        16383,
      16384,   (1ULL << 32) - 1, 1ULL << 32, (1ULL << 63),
      std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string out;
    PutVarint64(&out, v);
    Slice in(out);
    uint64_t decoded = 0;
    ASSERT_TRUE(in.GetVarint64(&decoded).ok()) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VarintTest, RoundTripRandom) {
  Rng rng(1234);
  for (int i = 0; i < 10000; ++i) {
    // Bias towards small magnitudes by masking with a random width.
    const uint64_t v = rng.NextU64() >> (rng.NextU64() % 64);
    std::string out;
    PutVarint64(&out, v);
    Slice in(out);
    uint64_t decoded = 0;
    ASSERT_TRUE(in.GetVarint64(&decoded).ok());
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string out;
  PutVarint64(&out, 1ULL << 40);
  for (size_t cut = 0; cut < out.size(); ++cut) {
    Slice in(std::string_view(out).substr(0, cut));
    uint64_t decoded = 0;
    EXPECT_EQ(in.GetVarint64(&decoded).code(), StatusCode::kCorruption)
        << "cut=" << cut;
  }
}

TEST(VarintTest, OverlongEncodingRejected) {
  // 11 continuation bytes can never be a valid 64-bit varint.
  std::string bad(11, '\x80');
  Slice in(bad);
  uint64_t decoded = 0;
  EXPECT_EQ(in.GetVarint64(&decoded).code(), StatusCode::kCorruption);
}

TEST(VarintTest, OverflowBitsRejected) {
  // 10th byte may only contribute the lowest bit of the 64-bit value.
  std::string bad(9, '\x80');
  bad.push_back('\x02');  // would set bit 64
  Slice in(bad);
  uint64_t decoded = 0;
  EXPECT_EQ(in.GetVarint64(&decoded).code(), StatusCode::kCorruption);
}

TEST(ZigZagTest, MapsSignedToCompactUnsigned) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
}

TEST(ZigZagTest, RoundTripExtremes) {
  const int64_t cases[] = {0,
                           1,
                           -1,
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min(),
                           123456789,
                           -987654321};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(SignedVarintTest, RoundTripThroughBuffer) {
  Rng rng(99);
  std::string out;
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v =
        static_cast<int64_t>(rng.NextU64() >> (rng.NextU64() % 64)) *
        ((rng.NextU64() & 1) ? 1 : -1);
    values.push_back(v);
    PutVarintSigned64(&out, v);
  }
  Slice in(out);
  for (int64_t expected : values) {
    int64_t v = 0;
    ASSERT_TRUE(in.GetVarintSigned64(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST(FixedDoubleTest, RoundTripSpecialValues) {
  const double cases[] = {0.0,
                          -0.0,
                          1.5,
                          -3.25e300,
                          5e-324,
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  for (double v : cases) {
    std::string out;
    PutFixedDouble(&out, v);
    EXPECT_EQ(out.size(), 8u);
    Slice in(out);
    double decoded = 0;
    ASSERT_TRUE(in.GetFixedDouble(&decoded).ok());
    EXPECT_EQ(std::memcmp(&decoded, &v, sizeof v), 0);
  }
}

TEST(FixedDoubleTest, NaNRoundTripsBitExactly) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::string out;
  PutFixedDouble(&out, nan);
  Slice in(out);
  double decoded = 0;
  ASSERT_TRUE(in.GetFixedDouble(&decoded).ok());
  EXPECT_TRUE(std::isnan(decoded));
}

TEST(SliceTest, GetBytesAndRemaining) {
  std::string payload = "hello world";
  Slice in(payload);
  std::string_view first;
  ASSERT_TRUE(in.GetBytes(5, &first).ok());
  EXPECT_EQ(first, "hello");
  EXPECT_EQ(in.remaining(), 6u);
  std::string_view too_much;
  EXPECT_EQ(in.GetBytes(100, &too_much).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dd
