// Wire-format round-trip tests for every baseline sketch (DDSketch's own
// codec is covered in serialization_test.cc). Each sketch must decode to a
// state answering all queries identically, reject truncations, and stay
// usable (addable, mergeable) after decoding — the requirements of the
// paper's ship-sketches-every-second pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "data/datasets.h"
#include "gk/gkarray.h"
#include "hdr/hdr_histogram.h"
#include "kll/kll_sketch.h"
#include "moments/moment_sketch.h"
#include "tdigest/tdigest.h"
#include "util/rng.h"

namespace dd {
namespace {

const std::vector<double>& TestData() {
  static const std::vector<double> data =
      GenerateDataset(DatasetId::kPareto, 20000);
  return data;
}

template <typename Sketch>
void ExpectSameQuantiles(const Sketch& a, const Sketch& b) {
  ASSERT_EQ(a.count(), b.count());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(a.QuantileOrNaN(q), b.QuantileOrNaN(q)) << q;
  }
}

template <typename Sketch>
void ExpectAllTruncationsRejected(const std::string& payload) {
  for (size_t cut = 0; cut < payload.size(); cut += 3) {
    auto r = Sketch::Deserialize(payload.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
  EXPECT_FALSE(Sketch::Deserialize(payload + "x").ok());
  EXPECT_FALSE(Sketch::Deserialize("garbage").ok());
  EXPECT_FALSE(Sketch::Deserialize("").ok());
}

TEST(GKWireTest, RoundTrip) {
  auto sketch = std::move(GKArray::Create(0.01)).value();
  for (double x : TestData()) sketch.Add(x);
  const std::string payload = sketch.Serialize();
  auto decoded = GKArray::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameQuantiles(sketch, decoded.value());
  EXPECT_EQ(decoded.value().rank_accuracy(), 0.01);
  ExpectAllTruncationsRejected<GKArray>(payload);
}

TEST(GKWireTest, EmptyRoundTripAndReuse) {
  auto sketch = std::move(GKArray::Create(0.05)).value();
  auto decoded = GKArray::Deserialize(sketch.Serialize());
  ASSERT_TRUE(decoded.ok());
  GKArray revived = std::move(decoded).value();
  EXPECT_TRUE(revived.empty());
  revived.Add(1.0);
  EXPECT_DOUBLE_EQ(revived.QuantileOrNaN(0.5), 1.0);
}

TEST(GKWireTest, CorruptWeightSumRejected) {
  auto sketch = std::move(GKArray::Create(0.01)).value();
  for (int i = 0; i < 1000; ++i) sketch.Add(static_cast<double>(i));
  std::string payload = sketch.Serialize();
  // Flip a byte inside the count varint region (offset 13: after magic,
  // version, epsilon double).
  payload[13] = static_cast<char>(payload[13] ^ 0x01);
  auto r = GKArray::Deserialize(payload);
  // Either detected as corrupt or the sum check fires.
  EXPECT_FALSE(r.ok());
}

TEST(HdrWireTest, IntegerRoundTrip) {
  auto h = std::move(HdrHistogram::Create(2, 1 << 30)).value();
  Rng rng(181);
  for (int i = 0; i < 50000; ++i) h.Record(1 + rng.NextBounded(1 << 28));
  const std::string payload = h.Serialize();
  auto decoded = HdrHistogram::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameQuantiles(h, decoded.value());
  EXPECT_EQ(decoded.value().clamped_count(), h.clamped_count());
  ExpectAllTruncationsRejected<HdrHistogram>(payload);
  // Sparse encoding: far smaller than the raw counts array.
  EXPECT_LT(payload.size(), h.counts_array_length() * sizeof(uint64_t) / 4);
}

TEST(HdrWireTest, DoubleRoundTripAndMerge) {
  auto h = std::move(HdrDoubleHistogram::Create(2, 0.1, 1e6)).value();
  Rng rng(182);
  for (int i = 0; i < 20000; ++i) h.Record(0.1 + rng.NextDouble() * 1000);
  h.Record(-1.0);  // rejected counter must survive
  auto decoded = HdrDoubleHistogram::Deserialize(h.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameQuantiles(h, decoded.value());
  EXPECT_EQ(decoded.value().rejected_count(), 1u);
  // Decoded histograms merge with live ones.
  HdrDoubleHistogram revived = std::move(decoded).value();
  ASSERT_TRUE(revived.MergeFrom(h).ok());
  EXPECT_EQ(revived.count(), 2 * h.count());
}

TEST(MomentsWireTest, RoundTripConstantSize) {
  auto sketch = std::move(MomentSketch::Create(20, true)).value();
  for (double x : TestData()) sketch.Add(x);
  const std::string payload = sketch.Serialize();
  // Constant-size payload: 7 header + 2 doubles + 21 sums + count varint.
  EXPECT_LT(payload.size(), 220u);
  auto decoded = MomentSketch::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().count(), sketch.count());
  for (size_t i = 0; i < sketch.power_sums().size(); ++i) {
    EXPECT_EQ(decoded.value().power_sums()[i], sketch.power_sums()[i]) << i;
  }
  for (double q : {0.25, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(decoded.value().QuantileOrNaN(q),
                     sketch.QuantileOrNaN(q))
        << q;
  }
  ExpectAllTruncationsRejected<MomentSketch>(payload);
}

TEST(MomentsWireTest, CompressionFlagPreserved) {
  auto plain = std::move(MomentSketch::Create(8, false)).value();
  plain.Add(3.0);
  auto decoded = MomentSketch::Deserialize(plain.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().compressed());
  EXPECT_EQ(decoded.value().num_moments(), 8);
}

TEST(TDigestWireTest, RoundTrip) {
  auto digest = std::move(TDigest::Create(100)).value();
  for (double x : TestData()) digest.Add(x);
  const std::string payload = digest.Serialize();
  auto decoded = TDigest::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameQuantiles(digest, decoded.value());
  EXPECT_EQ(decoded.value().num_centroids(), digest.num_centroids());
  ExpectAllTruncationsRejected<TDigest>(payload);
}

TEST(TDigestWireTest, DecodedDigestKeepsWorking) {
  auto digest = std::move(TDigest::Create(100)).value();
  for (int i = 0; i < 10000; ++i) digest.Add(static_cast<double>(i));
  auto decoded = TDigest::Deserialize(digest.Serialize());
  ASSERT_TRUE(decoded.ok());
  TDigest revived = std::move(decoded).value();
  for (int i = 10000; i < 20000; ++i) revived.Add(static_cast<double>(i));
  EXPECT_EQ(revived.count(), 20000u);
  EXPECT_NEAR(revived.QuantileOrNaN(0.5), 10000.0, 500.0);
  revived.MergeFrom(digest);
  EXPECT_EQ(revived.count(), 30000u);
}

TEST(KllWireTest, RoundTrip) {
  auto sketch = std::move(KllSketch::Create(200, 5)).value();
  for (double x : TestData()) sketch.Add(x);
  const std::string payload = sketch.Serialize();
  auto decoded = KllSketch::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameQuantiles(sketch, decoded.value());
  EXPECT_EQ(decoded.value().num_retained(), sketch.num_retained());
  EXPECT_EQ(decoded.value().num_levels(), sketch.num_levels());
  ExpectAllTruncationsRejected<KllSketch>(payload);
}

TEST(KllWireTest, DecodedSketchMergesAndKeepsGuarantee) {
  auto a = std::move(KllSketch::Create(400, 6)).value();
  auto b = std::move(KllSketch::Create(400, 7)).value();
  Rng rng(183);
  for (int i = 0; i < 100000; ++i) {
    a.Add(rng.NextDouble());
    b.Add(rng.NextDouble());
  }
  auto decoded = KllSketch::Deserialize(a.Serialize());
  ASSERT_TRUE(decoded.ok());
  KllSketch revived = std::move(decoded).value();
  ASSERT_TRUE(revived.MergeFrom(b).ok());
  EXPECT_EQ(revived.count(), 200000u);
  // Uniform data: quantile of merged ~ q.
  for (double q : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(revived.QuantileOrNaN(q), q, 0.02) << q;
  }
}

TEST(CrossFormatTest, MagicsAreDistinct) {
  // Every sketch rejects every other sketch's payload.
  auto gk = std::move(GKArray::Create(0.01)).value();
  gk.Add(1.0);
  auto hdr = std::move(HdrHistogram::Create(2, 1000)).value();
  hdr.Record(1);
  auto moments = std::move(MomentSketch::Create(4, true)).value();
  moments.Add(1.0);
  auto td = std::move(TDigest::Create(100)).value();
  td.Add(1.0);
  auto kll = std::move(KllSketch::Create(8)).value();
  kll.Add(1.0);
  const std::string payloads[] = {gk.Serialize(), hdr.Serialize(),
                                  moments.Serialize(), td.Serialize(),
                                  kll.Serialize()};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(GKArray::Deserialize(payloads[i]).ok(), i == 0);
    EXPECT_EQ(HdrHistogram::Deserialize(payloads[i]).ok(), i == 1);
    EXPECT_EQ(MomentSketch::Deserialize(payloads[i]).ok(), i == 2);
    EXPECT_EQ(TDigest::Deserialize(payloads[i]).ok(), i == 3);
    EXPECT_EQ(KllSketch::Deserialize(payloads[i]).ok(), i == 4);
  }
}

}  // namespace
}  // namespace dd
