// ddsketch_cli: build, inspect, merge and query DDSketches from the shell.
//
// Usage:
//   ddsketch_cli build [--alpha A] [--buckets M] [--out FILE] < values.txt
//       Reads one value per line from stdin, writes a serialized sketch.
//   ddsketch_cli query FILE [q1 q2 ...]
//       Prints quantile estimates (default: p50 p75 p90 p95 p99 p99.9).
//   ddsketch_cli merge OUT IN1 IN2 [IN3 ...]
//       Merges serialized sketches into OUT.
//   ddsketch_cli info FILE
//       Prints count/min/max/mean/buckets/footprint.
//   ddsketch_cli generate DATASET N [SEED]
//       Emits N values of a built-in data set (pareto|span|power|
//       web_latency) to stdout, one per line — pipe into `build`.
//
// Durable time-series mode (persists to a data directory with per-shard
// write-ahead logs + snapshots; see src/timeseries/sharded_store.h).
// Sharded directories (created by `sketchd --shards N` or `ingest
// --shards N`) are auto-detected via their SHARDS manifest and writes
// route by the same stable series hash sketchd uses; legacy flat
// directories keep working unchanged:
//   ddsketch_cli ingest --data-dir DIR --series NAME [--timestamp T]
//                       [--alpha A] [--sync] [--shards N] < values.txt
//       Reads "value" or "timestamp value" lines from stdin and ingests
//       them durably (plain values land at --timestamp, default 0).
//       --shards N creates a fresh directory with N shards.
//   ddsketch_cli query --data-dir DIR --series NAME --start S --end E
//                      [--alpha A] [q1 q2 ...]
//       Quantiles of the merged sketch over [S, E).
//   ddsketch_cli compact --data-dir DIR --now T [--alpha A]
//       Rolls up old intervals, snapshots, and truncates the log
//       (every shard).
//
// Remote mode (talks to a running sketchd daemon over its wire protocol,
// docs/PROTOCOL.md; see tools/sketchd.cc):
//   ddsketch_cli remote-ingest --port P [--host H] --series NAME
//                              [--timestamp T] < values.txt
//       Streams "value" or "timestamp value" lines to the daemon
//       (pipelined, so the server's group commit batches the fsyncs).
//   ddsketch_cli remote-query --port P [--host H] --series NAME
//                             --start S --end E [q1 q2 ...]
//       Quantiles over [S, E), answered by the daemon.
//   ddsketch_cli remote-stats --port P [--host H]
//       Aggregate and per-shard store statistics (docs/OPERATIONS.md
//       documents every field).
//   ddsketch_cli remote-compact --port P [--host H] [--now T]
//       Runs rollup + retention on every shard and checkpoints (v6).
//       Without --now the fold is purely data-driven (the server clamps
//       the clock to the newest ingested timestamp regardless).
//   ddsketch_cli remote-promote --port P [--host H]
//       Promotes a follower to primary (v5 failover): bumps the fencing
//       token, stops tailing, fences the old primary.
//
// Example round trip:
//   ddsketch_cli generate pareto 1000000 | ddsketch_cli build --out s.dds
//   ddsketch_cli query s.dds 0.5 0.99

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "core/ddsketch.h"
#include "data/datasets.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "timeseries/sharded_store.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "ddsketch_cli: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ddsketch_cli build [--alpha A] [--buckets M] [--out FILE]\n"
      "  ddsketch_cli query FILE [q1 q2 ...]\n"
      "  ddsketch_cli merge OUT IN1 IN2 [IN3 ...]\n"
      "  ddsketch_cli info FILE\n"
      "  ddsketch_cli generate DATASET N [SEED]\n"
      "durable time-series mode (sharded dirs auto-detected):\n"
      "  ddsketch_cli ingest --data-dir DIR --series NAME [--timestamp T]\n"
      "                      [--alpha A] [--sync] [--shards N]\n"
      "                      (values on stdin)\n"
      "  ddsketch_cli query --data-dir DIR --series NAME --start S --end E\n"
      "                      [--alpha A] [q1 q2 ...]\n"
      "  ddsketch_cli compact --data-dir DIR --now T [--alpha A]\n"
      "remote mode (against a running sketchd):\n"
      "  ddsketch_cli remote-ingest --port P [--host H] --series NAME\n"
      "                      [--timestamp T]   (values on stdin)\n"
      "  ddsketch_cli remote-query --port P [--host H] --series NAME\n"
      "                      --start S --end E [q1 q2 ...]\n"
      "  ddsketch_cli remote-stats --port P [--host H]\n"
      "  ddsketch_cli remote-compact --port P [--host H] [--now T]\n"
      "  ddsketch_cli remote-promote --port P [--host H]\n"
      "  ddsketch_cli remote-stress --port P [--host H] [--series NAME]\n"
      "                      [--idle-conns N] [--hot-conns K] [--count M]\n"
      "                      [--tag NAME]  (charge hot conns to an\n"
      "                      admission tag; prints a per-tag summary)\n");
  return 2;
}

dd::Result<dd::DDSketch> LoadSketch(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return dd::Status::InvalidArgument("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return dd::DDSketch::Deserialize(buffer.str());
}

bool SaveSketch(const dd::DDSketch& sketch, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string payload = sketch.Serialize();
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return static_cast<bool>(out);
}

int CmdBuild(int argc, char** argv) {
  double alpha = 0.01;
  int32_t buckets = 2048;
  std::string out_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--alpha" && i + 1 < argc) {
      alpha = std::strtod(argv[++i], nullptr);
    } else if (arg == "--buckets" && i + 1 < argc) {
      buckets = static_cast<int32_t>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Fail("unknown build option: " + arg);
    }
  }
  auto result = dd::DDSketch::Create(alpha, buckets);
  if (!result.ok()) return Fail(result.status().ToString());
  dd::DDSketch sketch = std::move(result).value();

  std::string line;
  uint64_t lines = 0, bad = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    char* end = nullptr;
    const double v = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) {
      ++bad;
      continue;
    }
    sketch.Add(v);
    ++lines;
  }
  std::fprintf(stderr, "built sketch: %llu values (%llu unparseable lines)\n",
               static_cast<unsigned long long>(lines),
               static_cast<unsigned long long>(bad));
  if (out_path.empty()) {
    std::fprintf(stderr, "no --out given; printing summary only\n");
    std::printf("count=%llu p50=%.6g p99=%.6g\n",
                static_cast<unsigned long long>(sketch.count()),
                sketch.QuantileOrNaN(0.5), sketch.QuantileOrNaN(0.99));
    return 0;
  }
  if (!SaveSketch(sketch, out_path)) return Fail("cannot write " + out_path);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto sketch = LoadSketch(argv[0]);
  if (!sketch.ok()) return Fail(sketch.status().ToString());
  std::vector<double> qs;
  for (int i = 1; i < argc; ++i) qs.push_back(std::strtod(argv[i], nullptr));
  if (qs.empty()) qs = {0.5, 0.75, 0.9, 0.95, 0.99, 0.999};
  for (double q : qs) {
    auto r = sketch.value().Quantile(q);
    if (!r.ok()) return Fail(r.status().ToString());
    std::printf("p%-7g %.10g\n", q * 100, r.value());
  }
  return 0;
}

int CmdMerge(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string out_path = argv[0];
  auto merged = LoadSketch(argv[1]);
  if (!merged.ok()) return Fail(merged.status().ToString());
  dd::DDSketch sketch = std::move(merged).value();
  for (int i = 2; i < argc; ++i) {
    auto next = LoadSketch(argv[i]);
    if (!next.ok()) return Fail(next.status().ToString());
    if (dd::Status s = sketch.MergeFrom(next.value()); !s.ok()) {
      return Fail(std::string(argv[i]) + ": " + s.ToString());
    }
  }
  if (!SaveSketch(sketch, out_path)) return Fail("cannot write " + out_path);
  std::fprintf(stderr, "merged %d sketches: %llu values\n", argc - 1,
               static_cast<unsigned long long>(sketch.count()));
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto sketch = LoadSketch(argv[0]);
  if (!sketch.ok()) return Fail(sketch.status().ToString());
  const dd::DDSketch& s = sketch.value();
  std::printf("count:            %llu\n",
              static_cast<unsigned long long>(s.count()));
  std::printf("zero_count:       %llu\n",
              static_cast<unsigned long long>(s.zero_count()));
  std::printf("rejected:         %llu\n",
              static_cast<unsigned long long>(s.rejected_count()));
  std::printf("min / max / mean: %.6g / %.6g / %.6g\n", s.min(), s.max(),
              s.mean());
  std::printf("alpha:            %.6g\n", s.relative_accuracy());
  std::printf("mapping:          %s\n",
              dd::MappingTypeToString(s.mapping().type()));
  std::printf("buckets:          %zu\n", s.num_buckets());
  std::printf("memory:           %.1f kB\n",
              static_cast<double>(s.size_in_bytes()) / 1024.0);
  return 0;
}

// Shared flag parsing for the durable subcommands. Returns false (after
// reporting) on an unknown flag; `extra` collects positional arguments.
struct DurableArgs {
  std::string data_dir;
  std::string series;
  std::string host = "127.0.0.1";
  int port = 0;
  int64_t timestamp = 0;
  int64_t start = 0;
  int64_t end = 0;
  int64_t now = 0;
  bool now_given = false;
  double alpha = 0.01;
  bool sync = false;
  size_t shards = 0;  // 0 = auto-detect the directory's layout
  std::vector<std::string> extra;
};

bool ParseDurableArgs(int argc, char** argv, DurableArgs* out,
                      bool require_data_dir = true) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--data-dir" && i + 1 < argc) {
      out->data_dir = argv[++i];
    } else if (arg == "--series" && i + 1 < argc) {
      out->series = argv[++i];
    } else if (arg == "--timestamp" && i + 1 < argc) {
      out->timestamp = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--start" && i + 1 < argc) {
      out->start = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--end" && i + 1 < argc) {
      out->end = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--now" && i + 1 < argc) {
      out->now = std::strtoll(argv[++i], nullptr, 10);
      out->now_given = true;
    } else if (arg == "--host" && i + 1 < argc) {
      out->host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      out->port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--alpha" && i + 1 < argc) {
      out->alpha = std::strtod(argv[++i], nullptr);
    } else if (arg == "--shards" && i + 1 < argc) {
      out->shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--sync") {
      out->sync = true;
    } else if (!arg.empty() && arg[0] == '-') {
      Fail("unknown option: " + arg);
      return false;
    } else {
      out->extra.push_back(arg);
    }
  }
  if (require_data_dir && out->data_dir.empty()) {
    Fail("--data-dir is required");
    return false;
  }
  return true;
}

/// Flag parsing for the remote subcommands: same flag set, but --port
/// and --series are what is required instead of --data-dir.
bool ParseRemoteArgs(int argc, char** argv, DurableArgs* out) {
  if (!ParseDurableArgs(argc, argv, out, /*require_data_dir=*/false)) {
    return false;
  }
  if (out->port <= 0 || out->port > 65535) {
    Fail("--port is required (1-65535)");
    return false;
  }
  if (out->series.empty()) {
    Fail("--series is required");
    return false;
  }
  return true;
}

/// Parses one ingest stdin line — a bare "value" (lands at
/// `default_timestamp`) or a "timestamp value" pair. Returns false on an
/// unparseable line. The timestamp is re-parsed as an integer because
/// strtod would round timestamps above 2^53 (e.g. epoch nanoseconds).
bool ParseIngestLine(const std::string& line, int64_t default_timestamp,
                     int64_t* timestamp, double* value) {
  char* end = nullptr;
  const double first = std::strtod(line.c_str(), &end);
  if (end == line.c_str()) return false;
  char* end2 = nullptr;
  const double second = std::strtod(end, &end2);
  *timestamp = default_timestamp;
  *value = first;
  if (end2 != end) {
    *timestamp = std::strtoll(line.c_str(), nullptr, 10);
    *value = second;
  }
  return true;
}

dd::Result<dd::ShardedDurableStore> OpenDurable(const DurableArgs& args) {
  dd::ShardedDurableStoreOptions options;
  options.durable.store.sketch.relative_accuracy = args.alpha;
  options.durable.sync_every_ingest = args.sync;
  // 0 auto-detects: a SHARDS manifest routes by the shard hash, a legacy
  // flat directory opens in place, a fresh directory is single-shard
  // (unless --shards asked for more).
  options.shards = args.shards;
  return dd::ShardedDurableStore::Open(args.data_dir, options);
}

int CmdIngest(int argc, char** argv) {
  DurableArgs args;
  if (!ParseDurableArgs(argc, argv, &args)) return 1;
  if (args.series.empty()) return Fail("--series is required");
  auto opened = OpenDurable(args);
  if (!opened.ok()) return Fail(opened.status().ToString());
  dd::ShardedDurableStore store = std::move(opened).value();

  std::string line;
  uint64_t ingested = 0, bad = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    int64_t ts = 0;
    double value = 0;
    if (!ParseIngestLine(line, args.timestamp, &ts, &value)) {
      ++bad;
      continue;
    }
    if (dd::Status s = store.IngestValue(args.series, ts, value); !s.ok()) {
      return Fail(s.ToString());
    }
    ++ingested;
  }
  std::fprintf(stderr,
               "ingested %llu values into %s (%llu unparseable lines), "
               "shard %zu/%zu wal at %llu bytes\n",
               static_cast<unsigned long long>(ingested), args.series.c_str(),
               static_cast<unsigned long long>(bad),
               store.ShardOf(args.series), store.num_shards(),
               static_cast<unsigned long long>(
                   store.shard(store.ShardOf(args.series)).wal_offset()));
  return 0;
}

int CmdQueryDurable(int argc, char** argv) {
  DurableArgs args;
  if (!ParseDurableArgs(argc, argv, &args)) return 1;
  if (args.series.empty()) return Fail("--series is required");
  if (args.end <= args.start) return Fail("--start/--end must be a window");
  auto opened = OpenDurable(args);
  if (!opened.ok()) return Fail(opened.status().ToString());
  const dd::ShardedDurableStore store = std::move(opened).value();
  std::vector<double> qs;
  for (const std::string& arg : args.extra) {
    qs.push_back(std::strtod(arg.c_str(), nullptr));
  }
  if (qs.empty()) qs = {0.5, 0.75, 0.9, 0.95, 0.99, 0.999};
  for (double q : qs) {
    auto r = store.QueryQuantile(args.series, args.start, args.end, q);
    if (!r.ok()) return Fail(r.status().ToString());
    std::printf("p%-7g %.10g\n", q * 100, r.value());
  }
  return 0;
}

int CmdCompact(int argc, char** argv) {
  DurableArgs args;
  if (!ParseDurableArgs(argc, argv, &args)) return 1;
  auto opened = OpenDurable(args);
  if (!opened.ok()) return Fail(opened.status().ToString());
  dd::ShardedDurableStore store = std::move(opened).value();
  auto compacted = store.Compact(args.now);
  if (!compacted.ok()) return Fail(compacted.status().ToString());
  std::fprintf(stderr,
               "compacted %zu intervals; store holds %zu across %zu series "
               "(%zu shards)\n",
               compacted.value(), store.TotalIntervals(), store.TotalSeries(),
               store.num_shards());
  return 0;
}

int CmdRemoteIngest(int argc, char** argv) {
  DurableArgs args;
  if (!ParseRemoteArgs(argc, argv, &args)) return 1;
  auto connected =
      dd::SketchClient::Connect(args.host, static_cast<uint16_t>(args.port));
  if (!connected.ok()) return Fail(connected.status().ToString());
  dd::SketchClient client = std::move(connected).value();

  // Same stdin grammar as `ingest`: bare values land at --timestamp,
  // "timestamp value" pairs carry their own. Stream in bounded windows
  // (memory stays O(window) however large the pipe) — each window is
  // pipelined by IngestValues, so the server still sees full commit
  // batches.
  constexpr size_t kWindow = 4096;
  std::vector<std::pair<int64_t, double>> points;
  points.reserve(kWindow);
  std::string line;
  uint64_t ingested = 0, bad = 0;
  auto flush = [&]() -> dd::Status {
    const dd::Status s = client.IngestValues(args.series, points);
    if (s.ok()) ingested += points.size();
    points.clear();
    return s;
  };
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    int64_t ts = 0;
    double value = 0;
    if (!ParseIngestLine(line, args.timestamp, &ts, &value)) {
      ++bad;
      continue;
    }
    points.emplace_back(ts, value);
    if (points.size() >= kWindow) {
      if (dd::Status s = flush(); !s.ok()) return Fail(s.ToString());
    }
  }
  if (dd::Status s = flush(); !s.ok()) return Fail(s.ToString());
  auto stats = client.Stats();
  if (!stats.ok()) return Fail(stats.status().ToString());
  std::fprintf(stderr,
               "ingested %llu values into %s (%llu unparseable lines), "
               "wal at %llu bytes after %llu group commits\n",
               static_cast<unsigned long long>(ingested), args.series.c_str(),
               static_cast<unsigned long long>(bad),
               static_cast<unsigned long long>(stats.value().wal_offset),
               static_cast<unsigned long long>(stats.value().batch_commits));
  return 0;
}

int CmdRemoteQuery(int argc, char** argv) {
  DurableArgs args;
  if (!ParseRemoteArgs(argc, argv, &args)) return 1;
  if (args.end <= args.start) return Fail("--start/--end must be a window");
  auto connected =
      dd::SketchClient::Connect(args.host, static_cast<uint16_t>(args.port));
  if (!connected.ok()) return Fail(connected.status().ToString());
  dd::SketchClient client = std::move(connected).value();
  std::vector<double> qs;
  for (const std::string& arg : args.extra) {
    qs.push_back(std::strtod(arg.c_str(), nullptr));
  }
  if (qs.empty()) qs = {0.5, 0.75, 0.9, 0.95, 0.99, 0.999};
  auto values = client.Query(args.series, args.start, args.end, qs);
  if (!values.ok()) return Fail(values.status().ToString());
  for (size_t i = 0; i < qs.size(); ++i) {
    std::printf("p%-7g %.10g\n", qs[i] * 100, values.value()[i]);
  }
  return 0;
}

int CmdRemoteStats(int argc, char** argv) {
  DurableArgs args;
  if (!ParseDurableArgs(argc, argv, &args, /*require_data_dir=*/false)) {
    return 1;
  }
  if (args.port <= 0 || args.port > 65535) {
    return Fail("--port is required (1-65535)");
  }
  auto connected =
      dd::SketchClient::Connect(args.host, static_cast<uint16_t>(args.port));
  if (!connected.ok()) return Fail(connected.status().ToString());
  dd::SketchClient client = std::move(connected).value();
  auto stats = client.Stats();
  if (!stats.ok()) return Fail(stats.status().ToString());
  const dd::StoreStats& s = stats.value();
  // One key=value line per aggregate field, then one line per shard —
  // grep-friendly for scripts (tests/smoke_sketchd.sh watches the shard
  // epochs to observe background checkpoints). Field meanings are
  // documented in docs/OPERATIONS.md.
  std::printf("series %llu\n", static_cast<unsigned long long>(s.num_series));
  std::printf("intervals %llu\n",
              static_cast<unsigned long long>(s.num_intervals));
  std::printf("bytes %llu\n", static_cast<unsigned long long>(s.size_in_bytes));
  std::printf("wal_bytes %llu\n",
              static_cast<unsigned long long>(s.wal_offset));
  std::printf("epoch %llu\n", static_cast<unsigned long long>(s.epoch));
  std::printf("batch_commits %llu\n",
              static_cast<unsigned long long>(s.batch_commits));
  std::printf("background_checkpoints %llu\n",
              static_cast<unsigned long long>(s.background_checkpoints));
  std::printf("connections_open %llu\n",
              static_cast<unsigned long long>(s.connections_open));
  std::printf("connections_accepted %llu\n",
              static_cast<unsigned long long>(s.connections_accepted));
  std::printf("connections_shed %llu\n",
              static_cast<unsigned long long>(s.connections_shed));
  std::printf("busy_rejections %llu\n",
              static_cast<unsigned long long>(s.busy_rejections));
  std::printf("staged_bytes %llu\n",
              static_cast<unsigned long long>(s.staged_bytes));
  // v5 replication: the server's role, its fencing state, and —
  // depending on that role — shipping (primary) or applying (follower)
  // progress.
  std::printf("role %s\n", s.role == 1 ? "follower" : "primary");
  std::printf("fence_token %llu\n",
              static_cast<unsigned long long>(s.fence_token));
  std::printf("fenced %llu\n", static_cast<unsigned long long>(s.fenced));
  std::printf("repl_subscribers %llu\n",
              static_cast<unsigned long long>(s.repl_subscribers));
  std::printf("repl_shipped_bytes %llu\n",
              static_cast<unsigned long long>(s.repl_shipped_bytes));
  std::printf("repl_applied_bytes %llu\n",
              static_cast<unsigned long long>(s.repl_applied_bytes));
  std::printf("repl_connected %llu\n",
              static_cast<unsigned long long>(s.repl_connected));
  std::printf("repl_heartbeat_age_ms %llu\n",
              static_cast<unsigned long long>(s.repl_heartbeat_age_ms));
  // v4 self-instrumentation: one line per op with the server-side ack
  // latency percentiles (microseconds; all zero when count is 0).
  for (size_t i = 0; i < dd::kNumLatencyOps; ++i) {
    const dd::OpLatencyStats& row = s.op_latencies[i];
    std::printf("op_latency %s count=%llu p50_us=%.3f p90_us=%.3f "
                "p99_us=%.3f p999_us=%.3f max_us=%.3f\n",
                std::string(dd::LatencyOpName(static_cast<dd::LatencyOp>(i)))
                    .c_str(),
                static_cast<unsigned long long>(row.count), row.p50_us,
                row.p90_us, row.p99_us, row.p999_us, row.max_us);
  }
  for (const dd::ShardStats& shard : s.shards) {
    std::printf("shard %llu series=%llu wal_bytes=%llu epoch=%llu "
                "commits=%llu bg_checkpoints=%llu\n",
                static_cast<unsigned long long>(shard.shard),
                static_cast<unsigned long long>(shard.num_series),
                static_cast<unsigned long long>(shard.wal_bytes),
                static_cast<unsigned long long>(shard.epoch),
                static_cast<unsigned long long>(shard.batch_commits),
                static_cast<unsigned long long>(shard.background_checkpoints));
  }
  // v6 rollup ladder: one line per resolution level, finest first
  // (retention 0 = keep forever; rollup_merges counts folds *into* the
  // level, so it stays 0 for the raw level).
  for (size_t i = 0; i < s.levels.size(); ++i) {
    const dd::LevelStatsRow& level = s.levels[i];
    std::printf("level %zu interval_s=%llu retention_s=%llu intervals=%llu "
                "rollup_merges=%llu bytes=%llu\n",
                i, static_cast<unsigned long long>(level.interval_seconds),
                static_cast<unsigned long long>(level.retention_seconds),
                static_cast<unsigned long long>(level.num_intervals),
                static_cast<unsigned long long>(level.rollup_merges),
                static_cast<unsigned long long>(level.retained_bytes));
  }
  // v7 per-tag admission: one line per tag ledger — the guaranteed
  // floor, the full borrowable budget, live staged bytes, refusals, the
  // throttle controller's current borrow share (permille of the shared
  // pool), and the tag's cumulative ack-latency percentiles.
  for (const dd::TagStatsRow& tag : s.tags) {
    std::printf("tag %s floor_bytes=%llu budget_bytes=%llu staged_bytes=%llu "
                "busy_rejections=%llu share_permille=%llu count=%llu "
                "p50_us=%.3f p99_us=%.3f p999_us=%.3f\n",
                tag.tag.c_str(),
                static_cast<unsigned long long>(tag.floor_bytes),
                static_cast<unsigned long long>(tag.budget_bytes),
                static_cast<unsigned long long>(tag.staged_bytes),
                static_cast<unsigned long long>(tag.busy_rejections),
                static_cast<unsigned long long>(tag.throttle_permille),
                static_cast<unsigned long long>(tag.count), tag.p50_us,
                tag.p99_us, tag.p999_us);
  }
  return 0;
}

int CmdRemoteCompact(int argc, char** argv) {
  DurableArgs args;
  if (!ParseDurableArgs(argc, argv, &args, /*require_data_dir=*/false)) {
    return 1;
  }
  if (args.port <= 0 || args.port > 65535) {
    return Fail("--port is required (1-65535)");
  }
  auto connected =
      dd::SketchClient::Connect(args.host, static_cast<uint16_t>(args.port));
  if (!connected.ok()) return Fail(connected.status().ToString());
  dd::SketchClient client = std::move(connected).value();
  // Without --now, fold everything eligible by data time (the server
  // clamps to the data horizon either way, so INT64_MAX saturates into
  // the same deterministic fold a scheduled checkpoint runs).
  const int64_t now =
      args.now_given ? args.now : std::numeric_limits<int64_t>::max();
  auto compacted = client.Compact(now);
  if (!compacted.ok()) return Fail(compacted.status().ToString());
  std::printf("compacted %llu intervals\n",
              static_cast<unsigned long long>(compacted.value()));
  return 0;
}

int CmdRemotePromote(int argc, char** argv) {
  DurableArgs args;
  if (!ParseDurableArgs(argc, argv, &args, /*require_data_dir=*/false)) {
    return 1;
  }
  if (args.port <= 0 || args.port > 65535) {
    return Fail("--port is required (1-65535)");
  }
  auto connected =
      dd::SketchClient::Connect(args.host, static_cast<uint16_t>(args.port));
  if (!connected.ok()) return Fail(connected.status().ToString());
  dd::SketchClient client = std::move(connected).value();
  auto token = client.Promote();
  if (!token.ok()) return Fail(token.status().ToString());
  std::printf("promoted: fence_token %llu\n",
              static_cast<unsigned long long>(token.value()));
  return 0;
}

/// Load shape for exercising the event-loop server: a large parked
/// majority of idle connections (hello done, then silent) plus a hot
/// minority ingesting flat out. Prints grep-friendly counters so
/// tests/smoke_sketchd.sh can assert the server kept serving, shed
/// nothing it should not have, and refused with BUSY rather than
/// losing acks. BUSY refusals here are re-driven by the client's
/// built-in backoff; only retry exhaustion counts as refused.
int CmdRemoteStress(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string series = "stress";
  std::string tag;
  int port = 0;
  int idle_conns = 1000;
  int hot_conns = 4;
  long long count = 2000;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : "";
    if (arg == "--host") {
      host = value;
      ++i;
    } else if (arg == "--port") {
      port = std::atoi(value);
      ++i;
    } else if (arg == "--series") {
      series = value;
      ++i;
    } else if (arg == "--tag") {
      tag = value;
      ++i;
    } else if (arg == "--idle-conns") {
      idle_conns = std::atoi(value);
      ++i;
    } else if (arg == "--hot-conns") {
      hot_conns = std::atoi(value);
      ++i;
    } else if (arg == "--count") {
      count = std::atoll(value);
      ++i;
    } else {
      return Fail("unknown flag: " + arg);
    }
  }
  if (port <= 0 || port > 65535) return Fail("--port is required (1-65535)");

  // Park the idle majority first: connect, complete the hello, then go
  // silent. They must cost the server nothing but epoll registrations.
  const std::string hello = dd::EncodeHello();
  std::vector<int> parked;
  parked.reserve(static_cast<size_t>(idle_conns));
  for (int i = 0; i < idle_conns; ++i) {
    auto fd = dd::ConnectTcp(host, static_cast<uint16_t>(port));
    if (!fd.ok()) break;  // fd limit reached: park what we can
    if (::send(fd.value(), hello.data(), hello.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(hello.size())) {
      ::close(fd.value());
      break;
    }
    parked.push_back(fd.value());
  }

  std::atomic<long long> acked{0};
  std::atomic<long long> refused{0};
  std::atomic<bool> hard_error{false};
  std::vector<std::thread> hot;
  for (int t = 0; t < hot_conns; ++t) {
    hot.emplace_back([&, t] {
      auto connected =
          dd::SketchClient::Connect(host, static_cast<uint16_t>(port));
      if (!connected.ok()) {
        hard_error.store(true);
        return;
      }
      dd::SketchClient client = std::move(connected).value();
      if (!tag.empty()) {
        if (const dd::Status s = client.SetTag(tag); !s.ok()) {
          std::fprintf(stderr, "remote-stress: SET_TAG: %s\n",
                       s.ToString().c_str());
          hard_error.store(true);
          return;
        }
      }
      const std::string name = series + "." + std::to_string(t);
      for (long long i = 0; i < count; ++i) {
        const dd::Status status =
            client.IngestValue(name, i % 1000, 1.0 + static_cast<double>(i % 97));
        if (status.ok()) {
          acked.fetch_add(1, std::memory_order_relaxed);
        } else if (status.code() == dd::StatusCode::kBusy) {
          refused.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::fprintf(stderr, "remote-stress: %s\n",
                       status.ToString().c_str());
          hard_error.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : hot) t.join();
  for (int fd : parked) ::close(fd);

  std::printf("parked_conns %zu\n", parked.size());
  std::printf("acked %lld\n", acked.load());
  std::printf("refused_busy %lld\n", refused.load());
  // Per-tag summary: which ledger the hot connections were charged to
  // (untagged traffic lands on the server's built-in "default" tag).
  std::printf("tag_summary %s acked=%lld refused_busy=%lld\n",
              tag.empty() ? "default" : tag.c_str(), acked.load(),
              refused.load());
  if (hard_error.load()) return Fail("a hot connection saw a hard error");
  return 0;
}

bool HasDataDirFlag(int argc, char** argv) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--data-dir") == 0) return true;
  }
  return false;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string name = argv[0];
  const size_t n = std::strtoull(argv[1], nullptr, 10);
  const uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : dd::kDefaultSeed;
  for (dd::DatasetId id :
       {dd::DatasetId::kPareto, dd::DatasetId::kSpan, dd::DatasetId::kPower,
        dd::DatasetId::kWebLatency}) {
    if (name == dd::DatasetIdToString(id)) {
      dd::DataStream stream(dd::MakeDataset(id), seed);
      for (size_t i = 0; i < n; ++i) std::printf("%.17g\n", stream.Next());
      return 0;
    }
  }
  return Fail("unknown data set: " + name +
              " (try pareto, span, power, web_latency)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "build") return CmdBuild(argc - 2, argv + 2);
  if (command == "query") {
    // `query FILE [q...]` inspects a sketch file; `query --data-dir ...`
    // queries a durable store.
    if (HasDataDirFlag(argc - 2, argv + 2)) {
      return CmdQueryDurable(argc - 2, argv + 2);
    }
    return CmdQuery(argc - 2, argv + 2);
  }
  if (command == "ingest") return CmdIngest(argc - 2, argv + 2);
  if (command == "remote-ingest") return CmdRemoteIngest(argc - 2, argv + 2);
  if (command == "remote-query") return CmdRemoteQuery(argc - 2, argv + 2);
  if (command == "remote-stats") return CmdRemoteStats(argc - 2, argv + 2);
  if (command == "remote-compact") return CmdRemoteCompact(argc - 2, argv + 2);
  if (command == "remote-promote") return CmdRemotePromote(argc - 2, argv + 2);
  if (command == "remote-stress") return CmdRemoteStress(argc - 2, argv + 2);
  if (command == "compact") return CmdCompact(argc - 2, argv + 2);
  if (command == "merge") return CmdMerge(argc - 2, argv + 2);
  if (command == "info") return CmdInfo(argc - 2, argv + 2);
  if (command == "generate") return CmdGenerate(argc - 2, argv + 2);
  return Usage();
}
