// sketchd: the DDSketch serving daemon. Fronts a sharded durable
// time-series sketch store (per-shard WAL + snapshots,
// src/timeseries/) with the binary wire protocol of docs/PROTOCOL.md,
// serving thousands of connections from a small epoll event-loop pool
// with admission control (staged-bytes budget → BUSY, deadline
// shedding), batching concurrent ingest fsyncs via per-shard group
// commit, and checkpointing shards in the background
// (src/server/server.h). Operator documentation — flags, data-dir
// layout, admission tuning, crash recovery — lives in
// docs/OPERATIONS.md.
//
// Usage:
//   sketchd --data-dir DIR [--host 127.0.0.1] [--port 0] [--alpha 0.01]
//           [--shards 0] [--commit-batch 64] [--commit-interval-us 0]
//           [--checkpoint-wal-bytes 0] [--checkpoint-interval-s 0]
//           [--event-loops 0] [--staged-bytes-budget 67108864]
//           [--max-conn-inflight 1024] [--idle-timeout-s 300]
//           [--stall-timeout-ms 10000] [--latency-alpha 0.01]
//           [--tag-budget tag=weight,..] [--tag-p99-target-us 0]
//           [--tag-throttle-interval-ms 200]
//           [--rollup-levels 10s,1m,1h] [--retention 1h,1d,inf]
//           [--port-file FILE] [--role primary|follower]
//           [--follow HOST:PORT] [--repl-ack-timeout-ms 1000]
//
// --port 0 (the default) binds an ephemeral port; the chosen port is
// printed on stdout and, with --port-file, written atomically to FILE so
// scripts can wait for it. The daemon runs until SIGINT/SIGTERM, then
// shuts down cleanly (staged ingests are committed before exit; the WAL
// makes even a SIGKILL recoverable).
//
// Replication (protocol v5, docs/PROTOCOL.md): `--role follower
// --follow HOST:PORT` starts a read-only replica that bootstraps from
// the primary's snapshots and tails its WAL segments. SIGUSR1 (or the
// PROMOTE op via `ddsketch_cli remote-promote`) promotes a follower to
// primary: it bumps the fencing token, stops tailing, and fences the
// old primary so its late writes are refused with FENCED.
//
// Talk to it with `ddsketch_cli remote-ingest / remote-query /
// remote-stats`, or any SketchClient (src/server/client.h).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "server/server.h"
#include "util/file_io.h"

namespace {

/// Parses "10s", "1m", "1h", "2d", or a bare second count into seconds.
/// Returns -1 on malformed input.
int64_t ParseDurationSeconds(const std::string& text) {
  if (text.empty()) return -1;
  char* end = nullptr;
  const long long n = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || n < 0) return -1;
  int64_t scale = 1;
  if (*end != '\0') {
    if (end[1] != '\0') return -1;
    switch (*end) {
      case 's': scale = 1; break;
      case 'm': scale = 60; break;
      case 'h': scale = 3600; break;
      case 'd': scale = 86400; break;
      default: return -1;
    }
  }
  return static_cast<int64_t>(n) * scale;
}

/// Parses a --tag-budget spec: "tag=weight,tag=weight,...". Weights are
/// positive integers; tag names follow the wire rules (1-64 chars of
/// [A-Za-z0-9._-], validated server-side). Returns false on malformed
/// input.
bool ParseTagBudget(const std::string& text,
                    std::vector<std::pair<std::string, uint64_t>>* out) {
  out->clear();
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return false;
    }
    char* end = nullptr;
    const unsigned long long weight =
        std::strtoull(item.c_str() + eq + 1, &end, 10);
    if (end == item.c_str() + eq + 1 || *end != '\0' || weight == 0) {
      return false;
    }
    out->emplace_back(item.substr(0, eq), static_cast<uint64_t>(weight));
    start = comma + 1;
  }
  return !out->empty();
}

/// Splits a comma-separated list of durations. "inf" (retention only)
/// maps to 0 = keep forever. Returns false on any malformed entry.
bool ParseDurationList(const std::string& text, bool allow_inf,
                       std::vector<int64_t>* out) {
  out->clear();
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    if (allow_inf && (item == "inf" || item == "forever")) {
      out->push_back(0);
    } else {
      const int64_t seconds = ParseDurationSeconds(item);
      if (seconds <= 0 && !(allow_inf && seconds == 0)) return false;
      out->push_back(seconds);
    }
    start = comma + 1;
  }
  return !out->empty();
}

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_promote = 0;

void HandleStopSignal(int) { g_stop = 1; }

void HandlePromoteSignal(int) { g_promote = 1; }

int Fail(const std::string& message) {
  std::fprintf(stderr, "sketchd: %s\n", message.c_str());
  return 1;
}

// The one source of truth for the flag list; --help prints it to stdout
// (exit 0) and errors print it to stderr (exit 2). docs/OPERATIONS.md
// documents the same set, and tests/smoke_sketchd.sh greps this output
// for every flag the manual names — keep the three in sync.
void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: sketchd --data-dir DIR [options]\n"
      "\n"
      "  --data-dir DIR            data directory (created/recovered on "
      "start)\n"
      "  --host H                  bind address            (default "
      "127.0.0.1)\n"
      "  --port P                  TCP port; 0 = ephemeral (default 0)\n"
      "  --port-file FILE          write the bound port atomically to FILE\n"
      "  --alpha A                 DDSketch relative accuracy (default "
      "0.01)\n"
      "  --shards N                shard count; 0 = auto-detect from the\n"
      "                            directory, fresh dirs open single-shard\n"
      "                            (default 0)\n"
      "  --commit-batch N          max records per group commit, per shard\n"
      "                            (default 64)\n"
      "  --commit-interval-us N    extra wait for a partial batch to fill\n"
      "                            (default 0)\n"
      "  --checkpoint-wal-bytes N  background-checkpoint a shard once its\n"
      "                            WAL exceeds N bytes; 0 = off (default "
      "0)\n"
      "  --checkpoint-interval-s N background-checkpoint a shard once its\n"
      "                            WAL has held records for N seconds;\n"
      "                            0 = off (default 0)\n"
      "  --event-loops N           epoll event-loop threads serving all\n"
      "                            connections; 0 = auto (default 0)\n"
      "  --staged-bytes-budget N   admission control: global cap on bytes\n"
      "                            staged but not yet durable; past it new\n"
      "                            records get BUSY; 0 = unlimited\n"
      "                            (default 67108864)\n"
      "  --max-conn-inflight N     max records staged per connection at\n"
      "                            once (default 1024)\n"
      "  --idle-timeout-s N        shed a connection idle for N seconds;\n"
      "                            0 = never (default 300)\n"
      "  --stall-timeout-ms N      shed a connection whose hello, frame, or\n"
      "                            response drain stalls past N ms;\n"
      "                            0 = never (default 10000)\n"
      "  --latency-alpha A         relative accuracy of the server's own\n"
      "                            per-op ack-latency sketches, reported\n"
      "                            via STATS (default 0.01)\n"
      "  --tag-budget SPEC         per-tag admission weights as\n"
      "                            tag=weight,tag=weight,... (e.g.\n"
      "                            gold=3,bronze=1). Each tag's floor is\n"
      "                            its weighted slice of half the staged\n"
      "                            budget; the rest is borrowable. Tags\n"
      "                            not listed (and untagged peers) share\n"
      "                            the built-in default tag\n"
      "  --tag-p99-target-us N     throttle a tag once its ack p99\n"
      "                            exceeds N microseconds: its borrowable\n"
      "                            share halves per breach and recovers\n"
      "                            on good ticks; 0 = throttling off\n"
      "                            (default 0)\n"
      "  --tag-throttle-interval-ms N\n"
      "                            how often the throttle controller\n"
      "                            samples per-tag p99 (default 200)\n"
      "  --rollup-levels L1,L2,..  resolution ladder: comma-separated\n"
      "                            interval widths, finest first, each a\n"
      "                            multiple of the previous (e.g.\n"
      "                            10s,1m,1h; suffixes s/m/h/d). Paired\n"
      "                            with --retention. Omit both to adopt\n"
      "                            the directory's ladder (fresh dirs get\n"
      "                            10s,1m,1h)\n"
      "  --retention R1,R2,..      per-level retention before data rolls\n"
      "                            up into the next level (same count and\n"
      "                            suffixes as --rollup-levels; the last\n"
      "                            entry may be inf to keep forever, e.g.\n"
      "                            1h,1d,inf). Rollup and trimming run\n"
      "                            only at checkpoint boundaries\n"
      "  --role R                  primary | follower (default primary);\n"
      "                            followers refuse writes with FENCED and\n"
      "                            replicate from --follow\n"
      "  --follow HOST:PORT        primary to replicate from (required\n"
      "                            when --role follower)\n"
      "  --repl-ack-timeout-ms N   semi-sync replication: hold client acks\n"
      "                            until every subscriber confirms, drop\n"
      "                            subscribers lagging past N ms; 0 acks\n"
      "                            without waiting (default 1000)\n"
      "  --help                    print this help and exit\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  std::string port_file;
  std::vector<int64_t> rollup_intervals;
  std::vector<int64_t> rollup_retention;
  dd::SketchServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--alpha" && i + 1 < argc) {
      options.durable.store.sketch.relative_accuracy =
          std::strtod(argv[++i], nullptr);
    } else if (arg == "--shards" && i + 1 < argc) {
      options.shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--commit-batch" && i + 1 < argc) {
      options.commit_batch = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--commit-interval-us" && i + 1 < argc) {
      options.commit_interval_us = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--checkpoint-wal-bytes" && i + 1 < argc) {
      options.checkpoint_wal_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--checkpoint-interval-s" && i + 1 < argc) {
      options.checkpoint_interval_ms =
          std::strtoll(argv[++i], nullptr, 10) * 1000;
    } else if (arg == "--event-loops" && i + 1 < argc) {
      options.event_loops = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--staged-bytes-budget" && i + 1 < argc) {
      options.staged_bytes_budget = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-conn-inflight" && i + 1 < argc) {
      options.max_conn_inflight = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--idle-timeout-s" && i + 1 < argc) {
      options.idle_timeout_ms = std::strtoll(argv[++i], nullptr, 10) * 1000;
    } else if (arg == "--stall-timeout-ms" && i + 1 < argc) {
      options.stall_timeout_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--latency-alpha" && i + 1 < argc) {
      options.latency_alpha = std::strtod(argv[++i], nullptr);
    } else if (arg == "--tag-budget" && i + 1 < argc) {
      if (!ParseTagBudget(argv[++i], &options.tag_weights)) {
        std::fprintf(stderr,
                     "sketchd: --tag-budget wants tag=weight,tag=weight,... "
                     "with positive integer weights (e.g. gold=3,bronze=1)\n");
        return Usage();
      }
    } else if (arg == "--tag-p99-target-us" && i + 1 < argc) {
      options.tag_p99_target_us = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--tag-throttle-interval-ms" && i + 1 < argc) {
      options.tag_throttle_interval_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--rollup-levels" && i + 1 < argc) {
      if (!ParseDurationList(argv[++i], /*allow_inf=*/false,
                             &rollup_intervals)) {
        std::fprintf(stderr,
                     "sketchd: --rollup-levels wants a comma-separated list "
                     "of durations (e.g. 10s,1m,1h)\n");
        return Usage();
      }
    } else if (arg == "--retention" && i + 1 < argc) {
      if (!ParseDurationList(argv[++i], /*allow_inf=*/true,
                             &rollup_retention)) {
        std::fprintf(stderr,
                     "sketchd: --retention wants a comma-separated list of "
                     "durations, last may be inf (e.g. 1h,1d,inf)\n");
        return Usage();
      }
    } else if (arg == "--role" && i + 1 < argc) {
      const std::string role = argv[++i];
      if (role == "primary") {
        options.durable.role = dd::StoreRole::kPrimary;
      } else if (role == "follower") {
        options.durable.role = dd::StoreRole::kFollower;
      } else {
        std::fprintf(stderr, "sketchd: --role must be primary or follower\n");
        return Usage();
      }
    } else if (arg == "--follow" && i + 1 < argc) {
      const std::string target = argv[++i];
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == target.size()) {
        std::fprintf(stderr, "sketchd: --follow wants HOST:PORT\n");
        return Usage();
      }
      options.follow_host = target.substr(0, colon);
      options.follow_port = static_cast<uint16_t>(
          std::strtoul(target.c_str() + colon + 1, nullptr, 10));
    } else if (arg == "--repl-ack-timeout-ms" && i + 1 < argc) {
      options.repl_ack_timeout_ms = std::strtoll(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "sketchd: unknown option: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (data_dir.empty()) {
    std::fprintf(stderr, "sketchd: --data-dir is required\n");
    return Usage();
  }
  if (rollup_intervals.size() != rollup_retention.size()) {
    std::fprintf(stderr,
                 "sketchd: --rollup-levels and --retention must be given "
                 "together with the same number of entries\n");
    return Usage();
  }
  for (size_t k = 0; k < rollup_intervals.size(); ++k) {
    options.durable.store.levels.push_back(
        {rollup_intervals[k], rollup_retention[k]});
  }
  if (dd::Status s = dd::SketchStore::ValidateLevels(options.durable.store.levels);
      !options.durable.store.levels.empty() && !s.ok()) {
    std::fprintf(stderr, "sketchd: %s\n", s.ToString().c_str());
    return Usage();
  }

  auto server = dd::SketchServer::Start(data_dir, options);
  if (!server.ok()) return Fail(server.status().ToString());

  std::printf("sketchd: listening on %s:%u (data-dir=%s, shards=%zu)\n",
              options.host.c_str(), server.value()->port(), data_dir.c_str(),
              server.value()->num_shards());
  std::fflush(stdout);
  if (!port_file.empty()) {
    // Atomic so a watcher never reads a half-written port number.
    const std::string contents = std::to_string(server.value()->port()) + "\n";
    if (dd::Status s = dd::WriteFileAtomic(port_file, contents); !s.ok()) {
      server.value()->Stop();
      return Fail(s.ToString());
    }
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGUSR1, HandlePromoteSignal);
  while (!g_stop) {
    if (g_promote) {
      g_promote = 0;
      auto token = server.value()->Promote();
      if (token.ok()) {
        std::printf("sketchd: promoted to primary (fence token %llu)\n",
                    static_cast<unsigned long long>(token.value()));
      } else {
        std::fprintf(stderr, "sketchd: promote failed: %s\n",
                     token.status().ToString().c_str());
      }
      std::fflush(stdout);
    }
    ::usleep(50 * 1000);
  }

  std::printf("sketchd: shutting down\n");
  server.value()->Stop();
  return 0;
}
